//! Multiprocessor scheduler substrate.
//!
//! This crate is the stand-in for the Linux 2.6.10 scheduler the paper
//! modifies (Section 5): per-CPU runqueues with O(1) priority arrays,
//! nice-scaled timeslices, task states, migration machinery, and the
//! stock hierarchical load balancer. The energy-aware policies of
//! `ebs-core` plug into this substrate exactly where the paper patched
//! Linux:
//!
//! - the load-balancing algorithm is replaceable (the paper *merges*
//!   energy balancing into it, Fig. 4),
//! - a running task can be pushed to another CPU (hot task migration,
//!   Fig. 5),
//! - the placement of newly started tasks is a policy hook
//!   (Section 4.6).
//!
//! Simplifications relative to real Linux 2.6 are documented on the
//! items concerned; the main ones are static priorities (no interactive
//! bonus — the evaluation workloads are CPU hogs) and load measured as
//! runqueue length (which is what the paper balances).
//!
//! # Examples
//!
//! ```
//! use ebs_sched::{System, TaskConfig};
//! use ebs_topology::{CpuId, Topology};
//!
//! let mut sys = System::new(Topology::xseries445(false));
//! let t = sys.spawn(TaskConfig::default(), CpuId(0));
//! let next = sys.context_switch(CpuId(0)).next;
//! assert_eq!(next, Some(t));
//! ```

mod aggregates;
mod load_balance;
mod prio_array;
mod runqueue;
mod system;
mod task;

pub use aggregates::{AggCell, LoadAggregates};
pub use load_balance::{
    balance_domain, busiest_queue_in_group, busiest_queued_cpu, find_busiest_group,
    find_busiest_group_capacity, find_busiest_group_scan, group_avg_load, group_avg_load_scan,
    group_effective_load, idlest_cpu, pull_tasks, BalanceOutcome, LoadBalancer, LoadBalancerConfig,
    AGGREGATE_CPU_THRESHOLD,
};
pub use prio_array::PrioArray;
pub use runqueue::RunQueue;
pub use system::{MigrateError, MigrationReason, SwitchResult, System, SystemStats, TickResult};
pub use task::{
    timeslice_for_nice, BinaryId, Task, TaskConfig, TaskId, TaskState, DEFAULT_TIMESLICE,
};
