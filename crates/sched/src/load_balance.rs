//! The stock hierarchical load balancer (the paper's baseline).
//!
//! Mirrors the Linux 2.6 algorithm at the granularity the paper cares
//! about: each CPU periodically walks its domain hierarchy bottom-up;
//! within a domain it finds the busiest CPU group, and if that group is
//! busier than the local one by a meaningful margin, it *pulls* tasks
//! from the busiest runqueue of that group into the local runqueue.
//! Balancing is pull-only — push imbalances resolve when the balancer
//! runs on the remote CPU (Section 4.4 describes how the energy
//! balancer inherits this structure).
//!
//! The group/queue search helpers are public: `ebs-core` reuses them to
//! implement the merged energy-and-load balancing algorithm of Fig. 4.

use crate::system::{MigrationReason, System};
use crate::task::TaskId;
use ebs_topology::{CpuGroup, CpuId, SchedDomain};
use ebs_units::SimTime;

/// Logical-CPU count from which the aggregate-tree balancing paths pay
/// for themselves. `exp_balance_bench` shows the 8-CPU shapes break
/// even (the scans are tiny and the caches cost bookkeeping) while
/// every 16-CPU-and-up rung wins, growing to 2–3.7× at 256 CPUs — so
/// the adaptive default scans below this threshold and reads the
/// aggregates at or above it. Decisions are bitwise identical either
/// way; only the cost of making them changes.
pub const AGGREGATE_CPU_THRESHOLD: usize = 16;

/// Tunables of the baseline balancer.
#[derive(Clone, Copy, Debug)]
pub struct LoadBalancerConfig {
    /// Minimum `nr_running` difference between the busiest and the
    /// local runqueue before tasks are moved. Linux moves half the
    /// difference and therefore effectively requires a difference of
    /// two; the same default keeps the baseline as quiet as the paper's
    /// (3.3 migrations in 15 minutes).
    pub min_imbalance: usize,
    /// Read group loads from the incremental aggregate tree (O(1) per
    /// group) instead of scanning every runqueue in the domain. The
    /// two paths select identically — the aggregates are exact integer
    /// sums — so forcing one path only matters for measuring the
    /// pre-aggregate cost (`exp_balance_bench`) and regression-testing
    /// the equivalence. `None` (the default) picks adaptively by
    /// machine size: scans below [`AGGREGATE_CPU_THRESHOLD`] logical
    /// CPUs (keeping tiny scenarios allocation-lean), aggregates at or
    /// above it.
    pub use_aggregates: Option<bool>,
}

impl Default for LoadBalancerConfig {
    fn default() -> Self {
        LoadBalancerConfig {
            min_imbalance: 2,
            use_aggregates: None,
        }
    }
}

impl LoadBalancerConfig {
    /// Resolves the aggregate-vs-scan choice for a machine with
    /// `n_cpus` logical CPUs (see [`AGGREGATE_CPU_THRESHOLD`]).
    pub fn resolve_aggregates(&self, n_cpus: usize) -> bool {
        self.use_aggregates
            .unwrap_or(n_cpus >= AGGREGATE_CPU_THRESHOLD)
    }
}

/// What a balancing pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BalanceOutcome {
    /// Tasks pulled to the balancing CPU.
    pub pulled: usize,
}

/// Periodic, per-CPU hierarchical load balancing state.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    cfg: LoadBalancerConfig,
    /// `next_balance[cpu][level]`: when that domain level is due.
    next_balance: Vec<Vec<SimTime>>,
}

impl LoadBalancer {
    /// Creates a balancer for systems shaped like `sys`. An
    /// unspecified `use_aggregates` resolves here, against the
    /// machine's size (see [`AGGREGATE_CPU_THRESHOLD`]).
    pub fn new(sys: &System, mut cfg: LoadBalancerConfig) -> Self {
        cfg.use_aggregates = Some(cfg.resolve_aggregates(sys.topology().n_cpus()));
        let next_balance = sys
            .topology()
            .cpu_ids()
            .map(|c| vec![SimTime::ZERO; sys.topology().domains(c).len()])
            .collect();
        LoadBalancer { cfg, next_balance }
    }

    /// The configuration (with `use_aggregates` resolved).
    pub fn config(&self) -> &LoadBalancerConfig {
        &self.cfg
    }

    /// Whether group selection reads the aggregate tree (resolved from
    /// the config and the machine size at construction).
    pub fn uses_aggregates(&self) -> bool {
        self.cfg
            .use_aggregates
            .expect("resolved at balancer construction")
    }

    /// The earliest instant any CPU's domain level is due for a
    /// periodic balancing pass. The variable-stride engine bounds its
    /// steps by this so balancing runs on schedule.
    pub fn next_due(&self) -> SimTime {
        self.next_balance
            .iter()
            .flatten()
            .copied()
            .min()
            // No domain levels at all (degenerate one-CPU machines):
            // never due, not "due now" — ZERO here would floor a
            // variable-stride engine to tick steps forever.
            .unwrap_or(SimTime::from_micros(u64::MAX))
    }

    /// Runs periodic balancing for `cpu`: every domain level whose
    /// interval elapsed gets one balancing attempt.
    pub fn run(&mut self, cpu: CpuId, sys: &mut System) -> BalanceOutcome {
        let now = sys.now();
        let mut outcome = BalanceOutcome::default();
        // Shared topology handle: iterating the domain stack while
        // mutating the system, without cloning a domain (whose group
        // lists span O(CPUs) at the top level) every pass.
        let topo = sys.topology_shared();
        for (level, domain) in topo.domains(cpu).iter().enumerate() {
            if now < self.next_balance[cpu.0][level] {
                continue;
            }
            self.next_balance[cpu.0][level] = now + domain.balance_interval();
            outcome.pulled += balance_domain(sys, cpu, domain, &self.cfg);
        }
        outcome
    }

    /// New-idle balancing: called when `cpu` just went idle; pulls one
    /// task from the nearest overloaded queue so the CPU does not sit
    /// idle while others queue (work conservation).
    pub fn newidle(&mut self, cpu: CpuId, sys: &mut System) -> BalanceOutcome {
        debug_assert!(sys.rq(cpu).is_idle(), "newidle on a busy CPU");
        let topo = sys.topology_shared();
        for domain in topo.domains(cpu) {
            // Pull from the busiest queue in the whole domain span that
            // has waiting tasks.
            let busiest = busiest_queued_cpu(sys, domain, cpu);
            if let Some(src) = busiest {
                if sys.rq(src).nr_queued() >= 1 && sys.nr_running(src) >= 2 {
                    let pulled =
                        pull_tasks(sys, src, cpu, 1, MigrationReason::LoadBalance, |_, _| true);
                    if pulled > 0 {
                        return BalanceOutcome { pulled };
                    }
                }
            }
        }
        BalanceOutcome::default()
    }
}

/// One balancing attempt within one domain, pulling towards `cpu`.
/// Returns the number of tasks moved.
pub fn balance_domain(
    sys: &mut System,
    cpu: CpuId,
    domain: &SchedDomain,
    cfg: &LoadBalancerConfig,
) -> usize {
    let Some(local_idx) = domain.local_group_index(cpu) else {
        return 0;
    };
    let busiest = if cfg.resolve_aggregates(sys.topology().n_cpus()) {
        find_busiest_group(sys, domain, local_idx)
    } else {
        find_busiest_group_scan(sys, domain, local_idx)
    };
    let Some((busiest_idx, _)) = busiest else {
        return 0;
    };
    let Some(src) = busiest_queue_in_group(sys, &domain.groups()[busiest_idx]) else {
        return 0;
    };
    let src_load = sys.nr_running(src);
    let dst_load = sys.nr_running(cpu);
    if src_load < dst_load + cfg.min_imbalance {
        return 0;
    }
    let n_move = (src_load - dst_load) / 2;
    if n_move == 0 {
        return 0;
    }
    pull_tasks(
        sys,
        src,
        cpu,
        n_move,
        MigrationReason::LoadBalance,
        |_, _| true,
    )
}

/// Finds the group with the highest average load (`nr_running` per
/// CPU), excluding the local group. Returns `None` when no remote group
/// is busier than the local one.
///
/// Group loads come from the incremental aggregate tree: O(1) per
/// group instead of a scan of its runqueues, which turns a balancing
/// pass over a domain of `g` groups spanning `n` CPUs from O(n) into
/// O(g). The integer sums make the result bitwise identical to
/// [`find_busiest_group_scan`].
pub fn find_busiest_group(
    sys: &System,
    domain: &SchedDomain,
    local_idx: usize,
) -> Option<(usize, f64)> {
    find_busiest_by(domain, local_idx, |g| group_avg_load(sys, g))
}

/// Capacity-normalized [`find_busiest_group`]: group load is
/// `nr_running` per unit of class-weighted compute capacity (see
/// [`System::group_capacity`]) instead of per CPU. On homogeneous
/// machines every capacity is 1.0 and this coincides with
/// [`find_busiest_group`]; on hybrid machines an efficiency cluster
/// saturates at fewer tasks than a performance cluster of the same
/// width, and this ranking reflects that.
pub fn find_busiest_group_capacity(
    sys: &System,
    domain: &SchedDomain,
    local_idx: usize,
) -> Option<(usize, f64)> {
    find_busiest_by(domain, local_idx, |g| group_effective_load(sys, g))
}

/// Average `nr_running` per unit of class-weighted capacity over a
/// group (0 for a degenerate empty group).
pub fn group_effective_load(sys: &System, group: &CpuGroup) -> f64 {
    if group.is_empty() {
        return 0.0;
    }
    sys.group_nr_running(group) as f64 / sys.group_capacity(group)
}

/// The pre-aggregate implementation of [`find_busiest_group`], walking
/// every runqueue in the domain. Kept as the baseline the balance
/// benchmark and the equivalence tests compare against.
pub fn find_busiest_group_scan(
    sys: &System,
    domain: &SchedDomain,
    local_idx: usize,
) -> Option<(usize, f64)> {
    find_busiest_by(domain, local_idx, |g| group_avg_load_scan(sys, g))
}

fn find_busiest_by<F: Fn(&CpuGroup) -> f64>(
    domain: &SchedDomain,
    local_idx: usize,
    load_of: F,
) -> Option<(usize, f64)> {
    let local_load = load_of(&domain.groups()[local_idx]);
    let mut best: Option<(usize, f64)> = None;
    for (i, group) in domain.groups().iter().enumerate() {
        if i == local_idx {
            continue;
        }
        let load = load_of(group);
        if load > local_load && best.is_none_or(|(_, b)| load > b) {
            best = Some((i, load));
        }
    }
    best
}

/// Average `nr_running` per CPU over a group (0 for a degenerate
/// empty group, rather than a NaN that would poison comparisons).
/// Reads the aggregate tree: O(1) for unit-tagged groups.
pub fn group_avg_load(sys: &System, group: &CpuGroup) -> f64 {
    if group.is_empty() {
        return 0.0;
    }
    sys.group_nr_running(group) as f64 / group.len() as f64
}

/// Scan-based [`group_avg_load`] (the pre-aggregate baseline).
pub fn group_avg_load_scan(sys: &System, group: &CpuGroup) -> f64 {
    if group.is_empty() {
        return 0.0;
    }
    let total: usize = group.cpus().iter().map(|&c| sys.nr_running(c)).sum();
    total as f64 / group.len() as f64
}

/// The CPU with the most *queued* (waiting) tasks in the domain's
/// span, `exclude` excluded; `None` when every queue is empty. Whole
/// groups whose aggregate queued count is zero are skipped, so a
/// new-idle pass on a mostly-idle big machine touches O(groups)
/// entries instead of every runqueue. Ties resolve to the last CPU in
/// span order, exactly as the full `max_by_key` scan it replaces
/// (skipped groups hold only zero-queued CPUs, which cannot tie a
/// positive maximum).
pub fn busiest_queued_cpu(sys: &System, domain: &SchedDomain, exclude: CpuId) -> Option<CpuId> {
    let mut best: Option<(usize, CpuId)> = None;
    for group in domain.groups() {
        if sys.group_nr_queued(group) == 0 {
            continue;
        }
        for &c in group.cpus() {
            if c == exclude {
                continue;
            }
            let queued = sys.rq(c).nr_queued();
            if queued > 0 && best.is_none_or(|(b, _)| queued >= b) {
                best = Some((queued, c));
            }
        }
    }
    best.map(|(_, c)| c)
}

/// The queue with the most runnable tasks in a group; `None` if every
/// queue in the group is idle.
pub fn busiest_queue_in_group(sys: &System, group: &CpuGroup) -> Option<CpuId> {
    group
        .cpus()
        .iter()
        .copied()
        .max_by_key(|&c| sys.nr_running(c))
        .filter(|&c| sys.nr_running(c) > 0)
}

/// Pulls up to `n` queued tasks from `src` to `dst`, preferring tasks
/// that will not run soon (expired, low priority). `filter` lets the
/// caller restrict the choice, e.g. to hot or cool tasks when the
/// energy balancer avoids creating energy imbalances.
///
/// Returns the number of tasks actually moved.
pub fn pull_tasks<F>(
    sys: &mut System,
    src: CpuId,
    dst: CpuId,
    n: usize,
    reason: MigrationReason,
    mut filter: F,
) -> usize
where
    F: FnMut(&System, TaskId) -> bool,
{
    if src == dst || n == 0 {
        return 0;
    }
    let candidates: Vec<TaskId> = sys.rq(src).iter_migration_candidates().collect();
    let mut moved = 0;
    for id in candidates {
        if moved == n {
            break;
        }
        if !filter(sys, id) {
            continue;
        }
        if sys.migrate_queued(id, dst, reason).is_ok() {
            moved += 1;
        }
    }
    moved
}

/// The CPU with the fewest runnable tasks (ties broken by lowest id) —
/// the baseline placement for newly spawned tasks. `None` only for a
/// degenerate CPU-less system, so callers skip instead of panicking.
pub fn idlest_cpu(sys: &System) -> Option<CpuId> {
    sys.topology()
        .cpu_ids()
        .min_by_key(|&c| (sys.nr_running(c), c.0))
}

impl ebs_store::Snapshot for LoadBalancer {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.seq(&self.next_balance, |w, levels| {
            w.seq(levels, |w, &t| w.time(t));
        });
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let next_balance = r.seq(|r| r.seq(|r| r.time()))?;
        if next_balance.len() != self.next_balance.len()
            || next_balance
                .iter()
                .zip(&self.next_balance)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(ebs_store::StoreError::Invalid(
                "balancer timer table shaped unlike this topology".into(),
            ));
        }
        self.next_balance = next_balance;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskConfig;
    use ebs_topology::Topology;

    fn system() -> System {
        System::new(Topology::xseries445(false))
    }

    fn spawn_n(sys: &mut System, cpu: CpuId, n: usize) -> Vec<TaskId> {
        (0..n)
            .map(|_| sys.spawn(TaskConfig::default(), cpu))
            .collect()
    }

    #[test]
    fn balanced_system_stays_quiet() {
        let mut sys = system();
        for c in 0..8 {
            spawn_n(&mut sys, CpuId(c), 2);
        }
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        for _ in 0..10 {
            for c in 0..8 {
                lb.run(CpuId(c), &mut sys);
            }
            let t = sys.now() + ebs_units::SimDuration::from_millis(100);
            sys.set_now(t);
        }
        assert_eq!(
            sys.stats().migrations(),
            0,
            "balanced load must not migrate"
        );
        sys.validate();
    }

    #[test]
    fn off_by_one_does_not_migrate() {
        // 18 tasks on 8 CPUs: queues of 2 and 3; Linux tolerates this.
        let mut sys = system();
        for c in 0..8 {
            spawn_n(&mut sys, CpuId(c), if c < 2 { 3 } else { 2 });
        }
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        for c in 0..8 {
            lb.run(CpuId(c), &mut sys);
        }
        assert_eq!(sys.stats().migrations(), 0);
    }

    #[test]
    fn gross_imbalance_is_pulled_level() {
        let mut sys = system();
        spawn_n(&mut sys, CpuId(0), 8);
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        // Run balancing on every CPU over a few intervals.
        for step in 0..20u64 {
            sys.set_now(ebs_units::SimTime::from_millis(step * 64));
            for c in 0..8 {
                lb.run(CpuId(c), &mut sys);
            }
        }
        let loads: Vec<usize> = (0..8).map(|c| sys.nr_running(CpuId(c))).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 1, "loads {loads:?} not balanced");
        assert!(sys.stats().migrations() >= 6);
        sys.validate();
    }

    #[test]
    fn next_due_advances_with_balancing() {
        let mut sys = system();
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        // Fresh balancer: everything due immediately.
        assert_eq!(lb.next_due(), ebs_units::SimTime::ZERO);
        sys.set_now(ebs_units::SimTime::from_millis(10));
        for c in 0..8 {
            lb.run(CpuId(c), &mut sys);
        }
        // Every level re-armed: the earliest due is one node-level
        // interval (the shortest without SMT) past now.
        let due = lb.next_due();
        assert!(due > ebs_units::SimTime::from_millis(10), "due {due:?}");
    }

    #[test]
    fn newidle_pulls_one_task() {
        let mut sys = system();
        spawn_n(&mut sys, CpuId(1), 3);
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        let outcome = lb.newidle(CpuId(0), &mut sys);
        assert_eq!(outcome.pulled, 1);
        assert_eq!(sys.nr_running(CpuId(0)), 1);
        assert_eq!(sys.nr_running(CpuId(1)), 2);
        sys.validate();
    }

    #[test]
    fn newidle_leaves_single_running_task_alone() {
        // A lone running task cannot be stolen (it is not queued).
        let mut sys = system();
        spawn_n(&mut sys, CpuId(1), 1);
        sys.context_switch(CpuId(1));
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        let outcome = lb.newidle(CpuId(0), &mut sys);
        assert_eq!(outcome.pulled, 0);
        assert_eq!(sys.nr_running(CpuId(1)), 1);
    }

    #[test]
    fn find_busiest_group_ignores_local() {
        let mut sys = system();
        spawn_n(&mut sys, CpuId(0), 1);
        spawn_n(&mut sys, CpuId(1), 3);
        spawn_n(&mut sys, CpuId(2), 2);
        let domain = sys.topology().domains(CpuId(0))[0].clone();
        let local_idx = domain.local_group_index(CpuId(0)).unwrap();
        let busiest = find_busiest_group(&sys, &domain, local_idx);
        // CPU 1's group is the busiest *remote* group.
        let (idx, load) = busiest.unwrap();
        assert!(domain.groups()[idx].contains(CpuId(1)));
        assert!((load - 3.0).abs() < 1e-12);
    }

    #[test]
    fn find_busiest_group_none_when_local_heaviest() {
        let mut sys = system();
        spawn_n(&mut sys, CpuId(0), 5);
        let domain = sys.topology().domains(CpuId(0))[0].clone();
        let local_idx = domain.local_group_index(CpuId(0)).unwrap();
        assert!(find_busiest_group(&sys, &domain, local_idx).is_none());
    }

    #[test]
    fn pull_tasks_respects_filter_and_limit() {
        let mut sys = system();
        let tasks = spawn_n(&mut sys, CpuId(0), 4);
        let banned = tasks[0];
        let moved = pull_tasks(
            &mut sys,
            CpuId(0),
            CpuId(1),
            2,
            MigrationReason::LoadBalance,
            |_, id| id != banned,
        );
        assert_eq!(moved, 2);
        assert_eq!(sys.nr_running(CpuId(1)), 2);
        assert_eq!(sys.task(banned).cpu(), CpuId(0));
    }

    #[test]
    fn pull_tasks_noop_cases() {
        let mut sys = system();
        spawn_n(&mut sys, CpuId(0), 2);
        assert_eq!(
            pull_tasks(
                &mut sys,
                CpuId(0),
                CpuId(0),
                5,
                MigrationReason::LoadBalance,
                |_, _| true
            ),
            0
        );
        assert_eq!(
            pull_tasks(
                &mut sys,
                CpuId(0),
                CpuId(1),
                0,
                MigrationReason::LoadBalance,
                |_, _| true
            ),
            0
        );
    }

    #[test]
    fn aggregate_default_flips_at_the_documented_threshold() {
        // Adaptive default: scan balancing below 16 logical CPUs
        // (where exp_balance_bench shows the aggregate paths break
        // even), aggregates at and above. Explicit settings always
        // win.
        let small = System::new(Topology::xseries445(false)); // 8 CPUs
        let at_threshold = System::new(Topology::xseries445(true)); // 16 CPUs
        assert_eq!(AGGREGATE_CPU_THRESHOLD, 16);
        let lb = LoadBalancer::new(&small, LoadBalancerConfig::default());
        assert!(!lb.uses_aggregates(), "8 CPUs must default to scans");
        assert_eq!(lb.config().use_aggregates, Some(false));
        let lb = LoadBalancer::new(&at_threshold, LoadBalancerConfig::default());
        assert!(lb.uses_aggregates(), "16 CPUs must default to aggregates");
        for (sys, forced) in [(&small, true), (&at_threshold, false)] {
            let lb = LoadBalancer::new(
                sys,
                LoadBalancerConfig {
                    use_aggregates: Some(forced),
                    ..LoadBalancerConfig::default()
                },
            );
            assert_eq!(lb.uses_aggregates(), forced);
        }
    }

    #[test]
    fn idlest_cpu_prefers_low_load_then_low_id() {
        let mut sys = system();
        assert_eq!(idlest_cpu(&sys), Some(CpuId(0)));
        spawn_n(&mut sys, CpuId(0), 1);
        assert_eq!(idlest_cpu(&sys), Some(CpuId(1)));
        for c in 1..8 {
            spawn_n(&mut sys, CpuId(c), 1);
        }
        assert_eq!(idlest_cpu(&sys), Some(CpuId(0)));
    }
}
