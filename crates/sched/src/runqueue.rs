//! Per-CPU runqueues with active/expired priority arrays.
//!
//! As in Linux 2.6: each CPU owns a runqueue with two priority arrays.
//! Tasks whose timeslice expires move to the *expired* array; when the
//! *active* array drains, the arrays are swapped. This gives round-robin
//! behaviour within a priority level at timeslice granularity, with O(1)
//! scheduling operations throughout.

use crate::prio_array::PrioArray;
use crate::task::TaskId;
use ebs_topology::CpuId;

/// A per-CPU runqueue.
#[derive(Clone, Debug)]
pub struct RunQueue {
    cpu: CpuId,
    active: PrioArray,
    expired: PrioArray,
    /// The task currently executing on this CPU (not in either array).
    current: Option<TaskId>,
    /// Sum of the energy profiles (watts) of the *queued* tasks,
    /// maintained incrementally by [`crate::System`]. A task's profile
    /// only changes while it runs — never while it waits in an array —
    /// so the cache is exact; it turns the runqueue-power metric the
    /// energy balancer reads O(CPUs · queue depth) times per pass into
    /// an O(1) lookup.
    queued_profile: f64,
}

impl RunQueue {
    /// Creates an empty runqueue for `cpu`.
    pub fn new(cpu: CpuId) -> Self {
        RunQueue {
            cpu,
            active: PrioArray::new(),
            expired: PrioArray::new(),
            current: None,
            queued_profile: 0.0,
        }
    }

    /// The owning CPU.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// The currently executing task.
    pub fn current(&self) -> Option<TaskId> {
        self.current
    }

    pub(crate) fn set_current(&mut self, task: Option<TaskId>) {
        self.current = task;
    }

    /// Number of runnable tasks including the running one — Linux's
    /// `nr_running`, the load metric the balancer equalises.
    pub fn nr_running(&self) -> usize {
        self.active.len() + self.expired.len() + usize::from(self.current.is_some())
    }

    /// Whether the CPU has nothing to run.
    pub fn is_idle(&self) -> bool {
        self.nr_running() == 0
    }

    /// Number of tasks waiting in the arrays (excluding current).
    pub fn nr_queued(&self) -> usize {
        self.active.len() + self.expired.len()
    }

    /// Enqueues a task on the active array.
    pub(crate) fn enqueue_active(&mut self, prio: usize, task: TaskId) {
        self.active.enqueue(prio, task);
    }

    /// Enqueues a task on the expired array (timeslice ran out).
    pub(crate) fn enqueue_expired(&mut self, prio: usize, task: TaskId) {
        self.expired.enqueue(prio, task);
    }

    /// Removes a queued (non-running) task; returns whether it was
    /// found.
    pub(crate) fn remove(&mut self, prio: usize, task: TaskId) -> bool {
        self.active.remove(prio, task) || self.expired.remove(prio, task)
    }

    /// Picks the next task to run, swapping the arrays if the active
    /// one drained. Returns `None` if the queue is empty. The caller is
    /// responsible for updating `current`.
    pub(crate) fn pick_next(&mut self) -> Option<TaskId> {
        if self.active.is_empty() && !self.expired.is_empty() {
            core::mem::swap(&mut self.active, &mut self.expired);
        }
        self.active.pop()
    }

    /// Sum of the queued (waiting) tasks' energy profiles, in watts.
    pub fn queued_profile(&self) -> f64 {
        self.queued_profile
    }

    /// Credits a newly queued task's profile to the cached sum.
    pub(crate) fn credit_profile(&mut self, watts: f64) {
        self.queued_profile += watts;
    }

    /// Debits a dequeued task's profile from the cached sum. An empty
    /// queue snaps the sum back to exactly zero, so floating-point
    /// residue cannot accumulate across millions of operations.
    pub(crate) fn debit_profile(&mut self, watts: f64) {
        self.queued_profile -= watts;
        if self.nr_queued() == 0 {
            self.queued_profile = 0.0;
        }
    }

    /// Iterates over queued (waiting) tasks in migration-preference
    /// order: expired tasks first (they will not run for the longest
    /// time), lowest priorities first.
    pub fn iter_migration_candidates(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.expired
            .iter_migration_order()
            .chain(self.active.iter_migration_order())
    }

    /// Iterates over every task associated with this queue, including
    /// the running one. This is the set whose energy profiles average
    /// into the *runqueue power* (Section 4.3).
    pub fn iter_all(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.current
            .into_iter()
            .chain(self.active.iter())
            .chain(self.expired.iter())
    }
}

impl ebs_store::Snapshot for RunQueue {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        self.active.save(w);
        self.expired.save(w);
        w.opt(&self.current, |w, id| w.u64(id.0));
        w.f64(self.queued_profile);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.active.restore(r)?;
        self.expired.restore(r)?;
        self.current = r.opt(|r| Ok(TaskId(r.u64()?)))?;
        self.queued_profile = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rq() -> RunQueue {
        RunQueue::new(CpuId(0))
    }

    #[test]
    fn empty_queue_is_idle() {
        let q = rq();
        assert!(q.is_idle());
        assert_eq!(q.nr_running(), 0);
        assert_eq!(q.current(), None);
    }

    #[test]
    fn nr_running_counts_current() {
        let mut q = rq();
        q.enqueue_active(20, TaskId(1));
        q.set_current(Some(TaskId(2)));
        assert_eq!(q.nr_running(), 2);
        assert_eq!(q.nr_queued(), 1);
        assert!(!q.is_idle());
    }

    #[test]
    fn pick_next_swaps_arrays_when_active_drains() {
        let mut q = rq();
        q.enqueue_active(20, TaskId(1));
        q.enqueue_expired(20, TaskId(2));
        assert_eq!(q.pick_next(), Some(TaskId(1)));
        // Active now empty; expired array must rotate in.
        assert_eq!(q.pick_next(), Some(TaskId(2)));
        assert_eq!(q.pick_next(), None);
    }

    #[test]
    fn round_robin_via_expired_array() {
        let mut q = rq();
        q.enqueue_active(20, TaskId(1));
        q.enqueue_active(20, TaskId(2));
        // Simulate: run 1, expire it, run 2, expire it, then both again.
        let first = q.pick_next().unwrap();
        q.enqueue_expired(20, first);
        let second = q.pick_next().unwrap();
        q.enqueue_expired(20, second);
        assert_eq!(first, TaskId(1));
        assert_eq!(second, TaskId(2));
        assert_eq!(q.pick_next(), Some(TaskId(1)));
        assert_eq!(q.pick_next(), Some(TaskId(2)));
    }

    #[test]
    fn remove_searches_both_arrays() {
        let mut q = rq();
        q.enqueue_active(20, TaskId(1));
        q.enqueue_expired(20, TaskId(2));
        assert!(q.remove(20, TaskId(2)));
        assert!(q.remove(20, TaskId(1)));
        assert!(!q.remove(20, TaskId(3)));
        assert_eq!(q.nr_queued(), 0);
    }

    #[test]
    fn migration_candidates_prefer_expired_and_low_prio() {
        let mut q = rq();
        q.enqueue_active(10, TaskId(1));
        q.enqueue_active(30, TaskId(2));
        q.enqueue_expired(20, TaskId(3));
        let order: Vec<_> = q.iter_migration_candidates().collect();
        assert_eq!(order, vec![TaskId(3), TaskId(2), TaskId(1)]);
    }

    #[test]
    fn iter_all_includes_current() {
        let mut q = rq();
        q.set_current(Some(TaskId(9)));
        q.enqueue_active(20, TaskId(1));
        q.enqueue_expired(20, TaskId(2));
        let all: Vec<_> = q.iter_all().collect();
        assert_eq!(all, vec![TaskId(9), TaskId(1), TaskId(2)]);
    }
}
