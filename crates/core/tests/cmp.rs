//! The Section 7 CMP extension at the policy level: with a core layer
//! in the domain hierarchy, energy balancing and hot task migration
//! exploit temperature differences *between cores of one die*.

use ebs_core::{
    EnergyAwareBalancer, EnergyBalanceConfig, HotMigration, HotTaskConfig, HotTaskMigrator,
    PowerState, PowerStateConfig,
};
use ebs_sched::{System, TaskConfig};
use ebs_topology::{CpuId, DomainLevel, Topology};
use ebs_units::{SimDuration, SimTime, Watts};

/// A dual-core version of the testbed: 2 nodes x 4 packages x 2 cores
/// x 1 thread = 16 CPUs, with a Core level in every domain stack.
fn cmp_topology() -> Topology {
    Topology::build_cmp(2, 4, 2, 1)
}

fn heat(power: &mut PowerState, cpu: CpuId, watts: f64) {
    for _ in 0..5_000 {
        power.observe(cpu, Watts(watts), SimDuration::from_millis(100));
    }
}

fn spawn_running(sys: &mut System, cpu: CpuId, profile: f64) -> ebs_sched::TaskId {
    let id = sys.spawn(
        TaskConfig {
            initial_profile: Watts(profile),
            ..TaskConfig::default()
        },
        cpu,
    );
    sys.context_switch(cpu);
    id
}

#[test]
fn cmp_hierarchy_has_core_level_between_smt_and_node() {
    let topo = Topology::build_cmp(2, 4, 2, 2);
    let levels: Vec<_> = topo.domains(CpuId(0)).iter().map(|d| d.level()).collect();
    assert_eq!(
        levels,
        vec![
            DomainLevel::Smt,
            DomainLevel::Core,
            DomainLevel::Node,
            DomainLevel::Top
        ]
    );
}

#[test]
fn hot_task_prefers_the_cool_core_on_the_same_die() {
    let topo = cmp_topology();
    let mut sys = System::new(topo.clone());
    let mut power = PowerState::uniform(16, Watts(40.0), PowerStateConfig::default());
    // CPU 0 = core 0 of package 0 runs hot; CPU 1 = core 1 of the same
    // package is idle and cool; other packages are also cool.
    assert!(topo.same_package(CpuId(0), CpuId(1)));
    assert!(!topo.same_core(CpuId(0), CpuId(1)));
    let hot = spawn_running(&mut sys, CpuId(0), 61.0);
    heat(&mut power, CpuId(0), 61.0);
    // Make the trigger fire against the *package* budget.
    let migrator = HotTaskMigrator::new(HotTaskConfig {
        trigger_fraction: 0.80,
        ..HotTaskConfig::default()
    });
    assert!(migrator.triggered(CpuId(0), &sys, &power));
    let result = migrator.run(CpuId(0), &mut sys, &power).unwrap();
    match result {
        HotMigration::ToIdle { task, dest } => {
            assert_eq!(task, hot);
            // The sibling *core* on the same die wins: cheapest level.
            assert_eq!(dest, CpuId(1), "expected the same-die core");
        }
        other => panic!("unexpected {other:?}"),
    }
    sys.validate();
}

#[test]
fn hot_task_leaves_the_die_when_the_whole_die_is_hot() {
    let topo = cmp_topology();
    let mut sys = System::new(topo);
    let mut power = PowerState::uniform(16, Watts(40.0), PowerStateConfig::default());
    let _hot = spawn_running(&mut sys, CpuId(0), 61.0);
    heat(&mut power, CpuId(0), 61.0);
    heat(&mut power, CpuId(1), 55.0); // The die's other core is hot too.
    let migrator = HotTaskMigrator::new(HotTaskConfig {
        trigger_fraction: 0.80,
        ..HotTaskConfig::default()
    });
    let result = migrator.run(CpuId(0), &mut sys, &power).unwrap();
    if let HotMigration::ToIdle { dest, .. } = result {
        assert_ne!(dest, CpuId(1), "picked the hot same-die core");
        assert!(
            sys.topology().same_node(dest, CpuId(0)),
            "should stay on the node when its packages are cool"
        );
    }
}

#[test]
fn energy_balancing_acts_between_cores_of_one_die() {
    // Core 0 of package 0 (CPU 0) holds two hot tasks; core 1 (CPU 1)
    // holds two cool ones. The core-level domain lets the energy step
    // even this out within the die.
    let topo = cmp_topology();
    let mut sys = System::new(topo);
    let mut power = PowerState::uniform(16, Watts(60.0), PowerStateConfig::default());
    let hot_a = sys.spawn(
        TaskConfig {
            initial_profile: Watts(61.0),
            ..TaskConfig::default()
        },
        CpuId(0),
    );
    sys.spawn(
        TaskConfig {
            initial_profile: Watts(60.0),
            ..TaskConfig::default()
        },
        CpuId(0),
    );
    for w in [30.0, 31.0] {
        sys.spawn(
            TaskConfig {
                initial_profile: Watts(w),
                ..TaskConfig::default()
            },
            CpuId(1),
        );
    }
    heat(&mut power, CpuId(0), 60.0);
    heat(&mut power, CpuId(1), 30.0);
    let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
    sys.set_now(SimTime::from_millis(100));
    let outcome = bal.run(CpuId(1), &mut sys, &power);
    assert!(outcome.pulled >= 1, "core-level energy step did not act");
    assert_eq!(
        sys.task(hot_a).cpu(),
        CpuId(1),
        "hot task should cross cores"
    );
    // Load stayed even.
    assert_eq!(sys.nr_running(CpuId(0)), 2);
    assert_eq!(sys.nr_running(CpuId(1)), 2);
    sys.validate();
}

#[test]
fn smt_siblings_on_cmp_are_still_protected() {
    // Full CMP with SMT: 2 threads per core. The energy step must not
    // move heat between threads of one core, but may move it between
    // cores.
    let topo = Topology::build_cmp(1, 1, 2, 2); // 1 package, 2 cores, 4 CPUs.
    let mut sys = System::new(topo.clone());
    let power = PowerState::uniform(4, Watts(30.0), PowerStateConfig::default());
    // Threads of core 0 are CPUs 0 and 2; threads of core 1 are 1 and 3.
    assert!(topo.same_core(CpuId(0), CpuId(2)));
    assert!(topo.same_core(CpuId(1), CpuId(3)));
    // Two tasks of very different heat on the two threads of core 0.
    for (cpu, w) in [(0usize, 61.0), (0, 60.0), (2, 20.0), (2, 21.0)] {
        sys.spawn(
            TaskConfig {
                initial_profile: Watts(w),
                ..TaskConfig::default()
            },
            CpuId(cpu),
        );
    }
    let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
    sys.set_now(SimTime::from_millis(100));
    bal.run(CpuId(2), &mut sys, &power);
    // Any move between CPUs 0 and 2 would be an energy move between
    // SMT siblings (load is equal) — forbidden.
    assert_eq!(
        sys.stats()
            .migrations_for(ebs_sched::MigrationReason::EnergyBalance),
        0,
        "energy balancing between SMT siblings of one core"
    );
    sys.validate();
}
