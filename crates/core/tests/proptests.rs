//! Property-based tests for the energy-aware policies.

use ebs_core::{
    group_runqueue_ratio, place_new_task, runqueue_power, EnergyAwareBalancer, EnergyBalanceConfig,
    GroupRatioCache, HotTaskConfig, HotTaskMigrator, PowerState, PowerStateConfig,
};
use ebs_sched::{System, TaskConfig};
use ebs_topology::{CpuId, Topology};
use ebs_units::{SimDuration, SimTime, Watts};
use proptest::prelude::*;

fn spawn(sys: &mut System, cpu: usize, watts: f64) {
    sys.spawn(
        TaskConfig {
            initial_profile: Watts(watts),
            ..TaskConfig::default()
        },
        CpuId(cpu),
    );
}

fn heated(n: usize, budget: f64, temps: &[f64]) -> PowerState {
    let mut ps = PowerState::uniform(n, Watts(budget), PowerStateConfig::default());
    for (c, &t) in temps.iter().enumerate() {
        for _ in 0..5_000 {
            ps.observe(CpuId(c), Watts(t), SimDuration::from_millis(100));
        }
    }
    ps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any profile distribution, the energy balancer never makes
    /// queue lengths differ by more than one extra task, and the
    /// invariants hold after every pass.
    #[test]
    fn balancer_never_wrecks_load(
        profiles in prop::collection::vec((0usize..8, 20.0f64..70.0), 4..24),
        temps in prop::collection::vec(10.0f64..60.0, 8),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        for &(cpu, watts) in &profiles {
            spawn(&mut sys, cpu, watts);
        }
        let before_loads: Vec<i64> =
            (0..8).map(|c| sys.nr_running(CpuId(c)) as i64).collect();
        let spread_before =
            before_loads.iter().max().unwrap() - before_loads.iter().min().unwrap();
        let power = heated(8, 60.0, &temps);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        for step in 0..40u64 {
            sys.set_now(SimTime::from_millis(step * 64));
            for c in 0..8 {
                bal.run(CpuId(c), &mut sys, &power);
            }
            sys.validate();
        }
        let after_loads: Vec<i64> =
            (0..8).map(|c| sys.nr_running(CpuId(c)) as i64).collect();
        let spread_after =
            after_loads.iter().max().unwrap() - after_loads.iter().min().unwrap();
        // Balancing (energy or load) never worsens the load spread
        // beyond the +-1 an exchange can transiently leave.
        prop_assert!(
            spread_after <= spread_before.max(1),
            "load spread grew: {before_loads:?} -> {after_loads:?}"
        );
    }

    /// Placement always picks a least-loaded CPU, whatever the power
    /// landscape looks like.
    #[test]
    fn placement_respects_load_first(
        loads in prop::collection::vec(0usize..4, 8),
        profile in 10.0f64..70.0,
        temps in prop::collection::vec(10.0f64..60.0, 8),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        for (c, &n) in loads.iter().enumerate() {
            for i in 0..n {
                spawn(&mut sys, c, 30.0 + i as f64);
            }
        }
        let power = heated(8, 60.0, &temps);
        let dest = place_new_task(&sys, &power, Watts(profile)).expect("8-CPU system");
        let min_load = (0..8).map(|c| sys.nr_running(CpuId(c))).min().unwrap();
        prop_assert_eq!(sys.nr_running(dest), min_load);
    }

    /// Hot task migration, when it acts, never picks a sibling and
    /// never leaves a load imbalance behind.
    #[test]
    fn hot_migration_is_always_legal(
        hot_cpu in 0usize..16,
        dest_profiles in prop::collection::vec(prop::option::of(15.0f64..45.0), 16),
        smt_budget in 15.0f64..25.0,
    ) {
        let topo = Topology::xseries445(true);
        let mut sys = System::new(topo.clone());
        let mut temps = vec![6.8; 16];
        // The hot CPU runs one hot task at trigger heat.
        spawn(&mut sys, hot_cpu, 61.0);
        sys.context_switch(CpuId(hot_cpu));
        temps[hot_cpu] = 61.0;
        // Other CPUs optionally run one task each.
        for (c, p) in dest_profiles.iter().enumerate() {
            if c != hot_cpu {
                if let Some(watts) = p {
                    spawn(&mut sys, c, *watts);
                    sys.context_switch(CpuId(c));
                    temps[c] = *watts;
                }
            }
        }
        let power = heated(16, smt_budget, &temps);
        let before: Vec<usize> = (0..16).map(|c| sys.nr_running(CpuId(c))).collect();
        let migrator = HotTaskMigrator::new(HotTaskConfig::default());
        if let Some(result) = migrator.run(CpuId(hot_cpu), &mut sys, &power) {
            let (dest, exchanged) = match result {
                ebs_core::HotMigration::ToIdle { dest, .. } => (dest, false),
                ebs_core::HotMigration::Exchanged { dest, .. } => (dest, true),
            };
            prop_assert!(!topo.same_package(dest, CpuId(hot_cpu)), "sibling destination");
            if exchanged {
                // Exchange keeps every queue length unchanged.
                let after: Vec<usize> = (0..16).map(|c| sys.nr_running(CpuId(c))).collect();
                prop_assert_eq!(before, after);
            } else {
                prop_assert_eq!(before[dest.0], 0, "idle migration to a busy CPU");
            }
        }
        sys.validate();
    }

    /// The memoised group ratio cache returns *bitwise* the same
    /// values as the scan-based reader after any interleaving of
    /// migrations, blocks/wakes, profile updates, and cache reads —
    /// the property the balancers' decision-identity rests on. Runs on
    /// a CMP shape so core, package, and node units all get cached.
    #[test]
    fn ratio_cache_is_bitwise_equal_to_scans(
        script in prop::collection::vec(
            (0usize..16, 0usize..16, 10.0f64..70.0, any::<bool>()), 1..60,
        ),
        budget in 30.0f64..70.0,
    ) {
        let topo = Topology::build_cmp(2, 2, 2, 2); // 16 CPUs, 4 levels.
        let mut sys = System::new(topo.clone());
        let power = PowerState::uniform(16, Watts(budget), PowerStateConfig::default());
        let mut cache = GroupRatioCache::new(&topo);
        for c in 0..16 {
            spawn(&mut sys, c, 20.0 + c as f64);
            spawn(&mut sys, c, 50.0 - c as f64);
        }
        let check_all = |cache: &mut GroupRatioCache, sys: &System| {
            for cpu in sys.topology().cpu_ids() {
                for domain in sys.topology().domains(cpu) {
                    for group in domain.groups() {
                        let fresh = group_runqueue_ratio(sys, group, &power);
                        let cached = cache.group_ratio(sys, group, &power);
                        if cached.to_bits() != fresh.to_bits() {
                            return Err((cached, fresh));
                        }
                        // Twice: the second read takes the memoised
                        // path and must not change the bits.
                        let again = cache.group_ratio(sys, group, &power);
                        if again.to_bits() != fresh.to_bits() {
                            return Err((again, fresh));
                        }
                    }
                }
            }
            Ok(())
        };
        for (a, b, watts, switch) in script {
            if switch {
                sys.context_switch(CpuId(a));
            }
            if let Some(id) = sys.current(CpuId(a)) {
                sys.update_profile(id, Watts(watts), SimDuration::from_millis(100));
            }
            let candidate = sys.rq(CpuId(a)).iter_migration_candidates().next();
            if let Some(id) = candidate {
                let _ = sys.migrate_queued(id, CpuId(b), ebs_sched::MigrationReason::LoadBalance);
            }
            let result = check_all(&mut cache, &sys);
            prop_assert!(result.is_ok(), "cache diverged from scan: {result:?}");
        }
    }

    /// Runqueue power of a queue after pulling a task equals the mean
    /// of the new membership (metric consistency under migration).
    #[test]
    fn runqueue_power_tracks_membership(
        src_profiles in prop::collection::vec(10.0f64..70.0, 2..6),
        dst_profiles in prop::collection::vec(10.0f64..70.0, 1..6),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        for &p in &src_profiles {
            spawn(&mut sys, 1, p);
        }
        for &p in &dst_profiles {
            spawn(&mut sys, 0, p);
        }
        let moved = sys.rq(CpuId(1)).iter_migration_candidates().next().unwrap();
        let moved_profile = sys.task(moved).profile().0;
        sys.migrate_queued(moved, CpuId(0), ebs_sched::MigrationReason::EnergyBalance)
            .unwrap();
        let expected = (dst_profiles.iter().sum::<f64>() + moved_profile)
            / (dst_profiles.len() + 1) as f64;
        let actual = runqueue_power(&sys, CpuId(0), Watts(13.6)).0;
        prop_assert!((actual - expected).abs() < 1e-9, "{actual} vs {expected}");
    }
}
