//! The kernel-side energy estimator (paper Sections 3.2 and 5).
//!
//! "Our energy estimator, which we integrated into the kernel, reads
//! the CPU's event counters on every task switch and at the end of each
//! timeslice, transforming the counter values into energy values."
//!
//! The estimator keeps one previous counter snapshot per logical CPU;
//! each accounting call attributes the events since that snapshot to
//! the task that just ran. Time the CPU spent halted during the
//! interval produces no events, so the estimator adds the known halt
//! power for it — the kernel knows exactly when it was in the idle
//! loop.

use ebs_counters::{CounterBank, CounterSnapshot, EnergyModel};
use ebs_topology::CpuId;
use ebs_units::{Joules, SimDuration, Watts};

/// Per-CPU counter-based energy accounting.
#[derive(Clone, Debug)]
pub struct EnergyEstimator {
    model: EnergyModel,
    last: Vec<CounterSnapshot>,
    halt_power_share: Watts,
}

impl EnergyEstimator {
    /// Creates an estimator for `n_cpus` logical CPUs.
    ///
    /// `model` is the *calibrated* energy model (not the ground truth);
    /// `halt_power_share` is the power attributed to one logical CPU
    /// while halted — the measured package halt power divided by the
    /// number of hardware threads.
    pub fn new(model: EnergyModel, n_cpus: usize, halt_power_share: Watts) -> Self {
        assert!(halt_power_share.is_sane(), "halt power share not sane");
        EnergyEstimator {
            model,
            last: vec![CounterSnapshot::ZERO; n_cpus],
            halt_power_share,
        }
    }

    /// The calibrated model in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// The halt power attributed per logical CPU.
    pub fn halt_power_share(&self) -> Watts {
        self.halt_power_share
    }

    /// Accounts the energy spent on `cpu` since the previous read.
    ///
    /// `interval` is the wall time covered and `halted` how much of it
    /// the CPU spent in the idle/halt loop. Returns the estimated
    /// energy for the interval.
    ///
    /// # Panics
    ///
    /// Panics if `halted` exceeds `interval` or `cpu` is out of range.
    pub fn account(
        &mut self,
        cpu: CpuId,
        bank: &mut CounterBank,
        interval: SimDuration,
        halted: SimDuration,
    ) -> Joules {
        assert!(halted <= interval, "halted time exceeds the interval");
        let snap = bank.snapshot();
        let delta = snap.since(&self.last[cpu.0]);
        self.last[cpu.0] = snap;
        self.model.estimate(&delta) + self.halt_power_share.over(halted)
    }

    /// The average power over an accounted interval; convenience for
    /// profile updates.
    ///
    /// Returns zero power for an empty interval.
    pub fn account_power(
        &mut self,
        cpu: CpuId,
        bank: &mut CounterBank,
        interval: SimDuration,
        halted: SimDuration,
    ) -> Watts {
        if interval.is_zero() {
            return Watts::ZERO;
        }
        self.account(cpu, bank, interval, halted)
            .average_power(interval)
    }
}

impl ebs_store::Snapshot for EnergyEstimator {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The model and halt power share are calibration config; only
        // the per-CPU "previous read" snapshots are run state.
        w.seq(&self.last, |w, snap| snap.save(w));
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let n = r.usize()?;
        if n != self.last.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "estimator state for {n} CPUs, expected {}",
                self.last.len()
            )));
        }
        for snap in &mut self.last {
            snap.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_counters::EventRates;

    fn estimator() -> EnergyEstimator {
        EnergyEstimator::new(EnergyModel::ground_truth_weights(), 2, Watts(6.8))
    }

    fn run_cycles(bank: &mut CounterBank, rates: &EventRates, cycles: u64) {
        bank.record(&rates.counts_for_cycles(cycles));
    }

    #[test]
    fn attributes_only_the_interval_delta() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let rates = EventRates::builder().uops_retired(2.0).build();
        let slice = SimDuration::from_millis(100);

        run_cycles(&mut bank, &rates, 220_000_000);
        let first = est.account(CpuId(0), &mut bank, slice, SimDuration::ZERO);
        run_cycles(&mut bank, &rates, 220_000_000);
        let second = est.account(CpuId(0), &mut bank, slice, SimDuration::ZERO);
        // Identical activity in both slices: identical energy, no
        // double counting.
        assert!((first.0 - second.0).abs() < 1e-9);
        assert!(first.0 > 0.0);
    }

    #[test]
    fn per_cpu_snapshots_are_independent() {
        let mut est = estimator();
        let mut bank0 = CounterBank::new();
        let mut bank1 = CounterBank::new();
        let rates = EventRates::builder().uops_retired(1.0).build();
        run_cycles(&mut bank0, &rates, 1_000_000);
        let slice = SimDuration::from_millis(10);
        let e0 = est.account(CpuId(0), &mut bank0, slice, SimDuration::ZERO);
        // CPU 1 saw nothing.
        let e1 = est.account(CpuId(1), &mut bank1, slice, SimDuration::ZERO);
        assert!(e0.0 > 0.0);
        assert_eq!(e1, Joules::ZERO);
    }

    #[test]
    fn halted_time_charged_at_halt_share() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let interval = SimDuration::from_millis(100);
        // Fully halted interval: no events, only halt power.
        let e = est.account(CpuId(0), &mut bank, interval, interval);
        assert!((e.0 - 6.8 * 0.1).abs() < 1e-12);
        let p = est.account_power(CpuId(0), &mut bank, interval, interval);
        assert!((p.0 - 6.8).abs() < 1e-12);
    }

    #[test]
    fn mixed_interval_adds_both_parts() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let rates = EventRates::builder().uops_retired(2.0).build();
        // 50 ms running at 2.2 GHz, 50 ms halted.
        run_cycles(&mut bank, &rates, 110_000_000);
        let e = est.account(
            CpuId(0),
            &mut bank,
            SimDuration::from_millis(100),
            SimDuration::from_millis(50),
        );
        let running_part =
            EnergyModel::ground_truth_weights().estimate(&rates.counts_for_cycles(110_000_000));
        assert!((e.0 - running_part.0 - 6.8 * 0.05).abs() < 1e-9);
    }

    #[test]
    fn account_power_of_empty_interval_is_zero() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let p = est.account_power(CpuId(0), &mut bank, SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(p, Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "halted time exceeds")]
    fn halted_longer_than_interval_rejected() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let _ = est.account(
            CpuId(0),
            &mut bank,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
    }
}
