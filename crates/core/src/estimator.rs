//! The kernel-side energy estimator (paper Sections 3.2 and 5).
//!
//! "Our energy estimator, which we integrated into the kernel, reads
//! the CPU's event counters on every task switch and at the end of each
//! timeslice, transforming the counter values into energy values."
//!
//! The estimator keeps one previous counter snapshot per logical CPU;
//! each accounting call attributes the events since that snapshot to
//! the task that just ran. Time the CPU spent halted during the
//! interval produces no events, so the estimator adds the known halt
//! power for it — the kernel knows exactly when it was in the idle
//! loop.

use ebs_counters::{CounterBank, CounterSnapshot, EnergyModel};
use ebs_topology::CpuId;
use ebs_units::{Joules, SimDuration, Watts};

/// Per-CPU counter-based energy accounting.
///
/// On homogeneous machines every CPU shares one calibrated model and
/// one halt share; on hybrid machines each core class carries its own
/// calibrated model (the per-event energies of an efficiency core are
/// genuinely different) and its own halt share, and the estimator
/// resolves both through the per-CPU class table.
#[derive(Clone, Debug)]
pub struct EnergyEstimator {
    /// Calibrated models, one per core class (class 0 first).
    models: Vec<EnergyModel>,
    /// Class index per logical CPU (all zero on homogeneous machines).
    cpu_class: Vec<usize>,
    last: Vec<CounterSnapshot>,
    /// Halt power share per core class.
    halt_shares: Vec<Watts>,
}

impl EnergyEstimator {
    /// Creates an estimator for `n_cpus` logical CPUs of one class.
    ///
    /// `model` is the *calibrated* energy model (not the ground truth);
    /// `halt_power_share` is the power attributed to one logical CPU
    /// while halted — the measured package halt power divided by the
    /// number of hardware threads.
    pub fn new(model: EnergyModel, n_cpus: usize, halt_power_share: Watts) -> Self {
        Self::with_classes(vec![model], vec![0; n_cpus], vec![halt_power_share])
    }

    /// Creates a class-aware estimator: one calibrated model and halt
    /// share per class, plus the class of every logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if the tables are inconsistent (empty classes, a CPU
    /// pointing past the class tables, or a non-sane halt share).
    pub fn with_classes(
        models: Vec<EnergyModel>,
        cpu_class: Vec<usize>,
        halt_shares: Vec<Watts>,
    ) -> Self {
        assert!(!models.is_empty(), "need at least one class model");
        assert_eq!(
            models.len(),
            halt_shares.len(),
            "one halt share per class model"
        );
        for share in &halt_shares {
            assert!(share.is_sane(), "halt power share not sane");
        }
        for &class in &cpu_class {
            assert!(class < models.len(), "CPU class {class} has no model");
        }
        let n_cpus = cpu_class.len();
        EnergyEstimator {
            models,
            cpu_class,
            last: vec![CounterSnapshot::ZERO; n_cpus],
            halt_shares,
        }
    }

    /// The calibrated model of class 0 (the only class on homogeneous
    /// machines).
    pub fn model(&self) -> &EnergyModel {
        &self.models[0]
    }

    /// The calibrated model governing one CPU.
    pub fn model_for(&self, cpu: CpuId) -> &EnergyModel {
        &self.models[self.cpu_class[cpu.0]]
    }

    /// The calibrated model of one class.
    pub fn class_model(&self, class: usize) -> &EnergyModel {
        &self.models[class]
    }

    /// The halt power attributed per logical CPU of class 0.
    pub fn halt_power_share(&self) -> Watts {
        self.halt_shares[0]
    }

    /// The halt power attributed to one specific CPU.
    pub fn halt_share_of(&self, cpu: CpuId) -> Watts {
        self.halt_shares[self.cpu_class[cpu.0]]
    }

    /// Accounts the energy spent on `cpu` since the previous read.
    ///
    /// `interval` is the wall time covered and `halted` how much of it
    /// the CPU spent in the idle/halt loop. Returns the estimated
    /// energy for the interval.
    ///
    /// # Panics
    ///
    /// Panics if `halted` exceeds `interval` or `cpu` is out of range.
    pub fn account(
        &mut self,
        cpu: CpuId,
        bank: &mut CounterBank,
        interval: SimDuration,
        halted: SimDuration,
    ) -> Joules {
        assert!(halted <= interval, "halted time exceeds the interval");
        let snap = bank.snapshot();
        let delta = snap.since(&self.last[cpu.0]);
        self.last[cpu.0] = snap;
        let class = self.cpu_class[cpu.0];
        self.models[class].estimate(&delta) + self.halt_shares[class].over(halted)
    }

    /// The average power over an accounted interval; convenience for
    /// profile updates.
    ///
    /// Returns zero power for an empty interval.
    pub fn account_power(
        &mut self,
        cpu: CpuId,
        bank: &mut CounterBank,
        interval: SimDuration,
        halted: SimDuration,
    ) -> Watts {
        if interval.is_zero() {
            return Watts::ZERO;
        }
        self.account(cpu, bank, interval, halted)
            .average_power(interval)
    }
}

impl ebs_store::Snapshot for EnergyEstimator {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The model and halt power share are calibration config; only
        // the per-CPU "previous read" snapshots are run state.
        w.seq(&self.last, |w, snap| snap.save(w));
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let n = r.usize()?;
        if n != self.last.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "estimator state for {n} CPUs, expected {}",
                self.last.len()
            )));
        }
        for snap in &mut self.last {
            snap.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_counters::EventRates;

    fn estimator() -> EnergyEstimator {
        EnergyEstimator::new(EnergyModel::ground_truth_weights(), 2, Watts(6.8))
    }

    fn run_cycles(bank: &mut CounterBank, rates: &EventRates, cycles: u64) {
        bank.record(&rates.counts_for_cycles(cycles));
    }

    #[test]
    fn attributes_only_the_interval_delta() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let rates = EventRates::builder().uops_retired(2.0).build();
        let slice = SimDuration::from_millis(100);

        run_cycles(&mut bank, &rates, 220_000_000);
        let first = est.account(CpuId(0), &mut bank, slice, SimDuration::ZERO);
        run_cycles(&mut bank, &rates, 220_000_000);
        let second = est.account(CpuId(0), &mut bank, slice, SimDuration::ZERO);
        // Identical activity in both slices: identical energy, no
        // double counting.
        assert!((first.0 - second.0).abs() < 1e-9);
        assert!(first.0 > 0.0);
    }

    #[test]
    fn per_cpu_snapshots_are_independent() {
        let mut est = estimator();
        let mut bank0 = CounterBank::new();
        let mut bank1 = CounterBank::new();
        let rates = EventRates::builder().uops_retired(1.0).build();
        run_cycles(&mut bank0, &rates, 1_000_000);
        let slice = SimDuration::from_millis(10);
        let e0 = est.account(CpuId(0), &mut bank0, slice, SimDuration::ZERO);
        // CPU 1 saw nothing.
        let e1 = est.account(CpuId(1), &mut bank1, slice, SimDuration::ZERO);
        assert!(e0.0 > 0.0);
        assert_eq!(e1, Joules::ZERO);
    }

    #[test]
    fn halted_time_charged_at_halt_share() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let interval = SimDuration::from_millis(100);
        // Fully halted interval: no events, only halt power.
        let e = est.account(CpuId(0), &mut bank, interval, interval);
        assert!((e.0 - 6.8 * 0.1).abs() < 1e-12);
        let p = est.account_power(CpuId(0), &mut bank, interval, interval);
        assert!((p.0 - 6.8).abs() < 1e-12);
    }

    #[test]
    fn mixed_interval_adds_both_parts() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let rates = EventRates::builder().uops_retired(2.0).build();
        // 50 ms running at 2.2 GHz, 50 ms halted.
        run_cycles(&mut bank, &rates, 110_000_000);
        let e = est.account(
            CpuId(0),
            &mut bank,
            SimDuration::from_millis(100),
            SimDuration::from_millis(50),
        );
        let running_part =
            EnergyModel::ground_truth_weights().estimate(&rates.counts_for_cycles(110_000_000));
        assert!((e.0 - running_part.0 - 6.8 * 0.05).abs() < 1e-9);
    }

    #[test]
    fn account_power_of_empty_interval_is_zero() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let p = est.account_power(CpuId(0), &mut bank, SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(p, Watts::ZERO);
    }

    #[test]
    fn class_aware_estimator_resolves_model_and_halt_per_cpu() {
        let perf = EnergyModel::ground_truth_weights();
        let mut cheap = *perf.weights_nj();
        for w in &mut cheap {
            *w *= 0.5;
        }
        let eff = EnergyModel::from_weights_nj(cheap);
        // CPU 0 is a performance core, CPU 1 an efficiency core.
        let mut est = EnergyEstimator::with_classes(
            vec![perf, eff],
            vec![0, 1],
            vec![Watts(6.8), Watts(2.25)],
        );
        assert_eq!(est.model_for(CpuId(0)), &perf);
        assert_eq!(est.model_for(CpuId(1)), &eff);
        assert_eq!(est.halt_share_of(CpuId(1)), Watts(2.25));

        let rates = EventRates::builder().uops_retired(2.0).build();
        let slice = SimDuration::from_millis(100);
        let mut bank0 = CounterBank::new();
        let mut bank1 = CounterBank::new();
        run_cycles(&mut bank0, &rates, 100_000_000);
        run_cycles(&mut bank1, &rates, 100_000_000);
        let e0 = est.account(CpuId(0), &mut bank0, slice, SimDuration::ZERO);
        let e1 = est.account(CpuId(1), &mut bank1, slice, SimDuration::ZERO);
        // Same counter deltas, half the per-event energy.
        assert!((e1.0 - 0.5 * e0.0).abs() < 1e-12, "{e1:?} vs {e0:?}");
    }

    #[test]
    fn single_class_constructor_matches_class_aware_form() {
        let model = EnergyModel::ground_truth_weights();
        let mut a = EnergyEstimator::new(model, 2, Watts(6.8));
        let mut b = EnergyEstimator::with_classes(vec![model], vec![0, 0], vec![Watts(6.8)]);
        let rates = EventRates::builder().mem_loads(0.4).build();
        let slice = SimDuration::from_millis(10);
        let mut bank = CounterBank::new();
        run_cycles(&mut bank, &rates, 22_000_000);
        let mut bank2 = bank.clone();
        let ea = a.account(CpuId(0), &mut bank, slice, SimDuration::ZERO);
        let eb = b.account(CpuId(0), &mut bank2, slice, SimDuration::ZERO);
        assert_eq!(ea, eb);
    }

    #[test]
    #[should_panic(expected = "halted time exceeds")]
    fn halted_longer_than_interval_rejected() {
        let mut est = estimator();
        let mut bank = CounterBank::new();
        let _ = est.account(
            CpuId(0),
            &mut bank,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
    }
}
