//! Initial task placement (Section 4.6).
//!
//! A task's energy characteristics cannot be known before it runs, but
//! its *initial* behaviour (initialisation code) is independent of the
//! input data. The paper therefore stores the energy a task consumed
//! during its first timeslice in a hash table indexed by the inode
//! number of the task's binary, and seeds the energy profile of every
//! new task from that table (falling back to a default for binaries
//! started for the very first time).
//!
//! With the seeded profile, the scheduler places the task on a CPU
//! that (a) does not create a load imbalance — only CPUs with the
//! minimum number of running tasks are eligible — and (b) brings the
//! CPU's runqueue power ratio as close as possible to the system-wide
//! average ratio.

use crate::metrics::{runqueue_power, PowerState};
use ebs_sched::{BinaryId, System};
use ebs_topology::CpuId;
use ebs_units::Watts;
use std::collections::HashMap;

/// The per-binary first-timeslice energy table.
#[derive(Clone, Debug)]
pub struct PlacementTable {
    entries: HashMap<BinaryId, Watts>,
    default_profile: Watts,
    hits: u64,
    misses: u64,
}

impl PlacementTable {
    /// Creates a table with the given default profile for unknown
    /// binaries.
    ///
    /// # Panics
    ///
    /// Panics if the default is not a sane power.
    pub fn new(default_profile: Watts) -> Self {
        assert!(default_profile.is_sane(), "default profile not sane");
        PlacementTable {
            entries: HashMap::new(),
            default_profile,
            hits: 0,
            misses: 0,
        }
    }

    /// The initial profile for a task started from `binary`.
    pub fn profile_for(&mut self, binary: BinaryId) -> Watts {
        match self.entries.get(&binary) {
            Some(&w) => {
                self.hits += 1;
                w
            }
            None => {
                self.misses += 1;
                self.default_profile
            }
        }
    }

    /// Records the power a task from `binary` drew during its first
    /// timeslice (later starts overwrite earlier ones — behaviour can
    /// drift with program versions).
    pub fn record_first_slice(&mut self, binary: BinaryId, power: Watts) {
        if power.is_sane() {
            self.entries.insert(binary, power);
        }
    }

    /// Number of binaries with recorded profiles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup statistics `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Chooses the CPU for a newly started task with the given seeded
/// profile (Section 4.6): among the CPUs with the fewest running tasks,
/// the one whose runqueue power ratio *including the new task* comes
/// closest to the current average ratio of all CPUs. `None` only for a
/// degenerate CPU-less system, so callers fall back instead of
/// panicking; ratio comparisons use a total order, so a NaN ratio
/// (e.g. a zero power budget on a generated machine) cannot panic
/// either.
pub fn place_new_task(sys: &System, power: &PowerState, profile: Watts) -> Option<CpuId> {
    let topo = sys.topology();
    let min_load = topo.cpu_ids().map(|c| sys.nr_running(c)).min()?;
    // The average runqueue power ratio over all CPUs, before placement.
    let avg_ratio = topo
        .cpu_ids()
        .map(|c| crate::metrics::runqueue_power_ratio(sys, c, power))
        .sum::<f64>()
        / topo.n_cpus() as f64;
    topo.cpu_ids()
        .filter(|&c| sys.nr_running(c) == min_load)
        .min_by(|&a, &b| {
            let da = (ratio_with_task(sys, power, a, profile) - avg_ratio).abs();
            let db = (ratio_with_task(sys, power, b, profile) - avg_ratio).abs();
            da.total_cmp(&db).then(a.0.cmp(&b.0))
        })
}

/// Capacity-normalized [`place_new_task`]: load-imbalance eligibility
/// compares `nr_running / capacity` instead of raw counts, so an
/// efficiency core with one task is *more* loaded than a performance
/// core with one task and new work drifts toward the cores that chew
/// through it fastest. `None` capacities delegate to the exact legacy
/// form (the comparisons coincide at unit capacity but the legacy path
/// stays byte-for-byte untouched).
pub fn place_new_task_capacity(
    sys: &System,
    power: &PowerState,
    profile: Watts,
    capacities: Option<&[f64]>,
) -> Option<CpuId> {
    let Some(caps) = capacities else {
        return place_new_task(sys, power, profile);
    };
    let topo = sys.topology();
    let eff = |c: CpuId| sys.nr_running(c) as f64 / caps[c.0];
    let min_eff = topo.cpu_ids().map(eff).min_by(f64::total_cmp)?;
    let avg_ratio = topo
        .cpu_ids()
        .map(|c| crate::metrics::runqueue_power_ratio(sys, c, power))
        .sum::<f64>()
        / topo.n_cpus() as f64;
    topo.cpu_ids()
        .filter(|&c| eff(c) == min_eff)
        .min_by(|&a, &b| {
            let da = (ratio_with_task(sys, power, a, profile) - avg_ratio).abs();
            let db = (ratio_with_task(sys, power, b, profile) - avg_ratio).abs();
            da.total_cmp(&db).then(a.0.cmp(&b.0))
        })
}

/// The runqueue power ratio `cpu` would have if `profile` joined its
/// queue.
fn ratio_with_task(sys: &System, power: &PowerState, cpu: CpuId, profile: Watts) -> f64 {
    let n = sys.nr_running(cpu);
    let current_power = runqueue_power(sys, cpu, power.idle_power());
    let new_power = if n == 0 {
        profile
    } else {
        (current_power * n as f64 + profile) / (n + 1) as f64
    };
    new_power.ratio(power.max_power(cpu))
}

impl ebs_store::Snapshot for PlacementTable {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // HashMap iteration order is arbitrary; sort by binary id so
        // equal tables always serialize to equal bytes (the content
        // hash depends on it).
        let mut entries: Vec<(BinaryId, Watts)> =
            self.entries.iter().map(|(&b, &p)| (b, p)).collect();
        entries.sort_by_key(|&(b, _)| b.0);
        w.seq(&entries, |w, &(b, p)| {
            w.u64(b.0);
            w.watts(p);
        });
        w.u64(self.hits);
        w.u64(self.misses);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let entries = r.seq(|r| Ok((BinaryId(r.u64()?), r.watts()?)))?;
        self.entries = entries.into_iter().collect();
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PowerStateConfig;
    use ebs_sched::TaskConfig;
    use ebs_topology::Topology;

    fn setup() -> (System, PowerState) {
        let sys = System::new(Topology::xseries445(false));
        let power = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
        (sys, power)
    }

    fn spawn(sys: &mut System, cpu: CpuId, profile: f64) {
        sys.spawn(
            TaskConfig {
                initial_profile: Watts(profile),
                ..TaskConfig::default()
            },
            cpu,
        );
    }

    #[test]
    fn table_round_trip_and_default() {
        let mut table = PlacementTable::new(Watts(30.0));
        assert!(table.is_empty());
        assert_eq!(table.profile_for(BinaryId(7)), Watts(30.0));
        table.record_first_slice(BinaryId(7), Watts(61.0));
        assert_eq!(table.profile_for(BinaryId(7)), Watts(61.0));
        assert_eq!(table.len(), 1);
        assert_eq!(table.stats(), (1, 1));
        // Overwrite wins.
        table.record_first_slice(BinaryId(7), Watts(48.0));
        assert_eq!(table.profile_for(BinaryId(7)), Watts(48.0));
        // Insane values ignored.
        table.record_first_slice(BinaryId(9), Watts(f64::NAN));
        assert_eq!(table.profile_for(BinaryId(9)), Watts(30.0));
    }

    #[test]
    fn placement_never_creates_load_imbalance() {
        let (mut sys, power) = setup();
        // CPUs 0..4 already loaded.
        for c in 0..4 {
            spawn(&mut sys, CpuId(c), 50.0);
        }
        let dest = place_new_task(&sys, &power, Watts(61.0)).unwrap();
        assert!(dest.0 >= 4, "picked a loaded CPU {dest} over an idle one");
    }

    #[test]
    fn hot_task_goes_to_cool_cpu() {
        let (mut sys, power) = setup();
        // Every CPU has one task; CPU 5's is coolest.
        for c in 0..8 {
            spawn(&mut sys, CpuId(c), if c == 5 { 20.0 } else { 45.0 });
        }
        let dest = place_new_task(&sys, &power, Watts(61.0)).unwrap();
        assert_eq!(dest, CpuId(5));
    }

    #[test]
    fn cool_task_goes_to_hot_cpu() {
        let (mut sys, power) = setup();
        for c in 0..8 {
            spawn(&mut sys, CpuId(c), if c == 2 { 61.0 } else { 40.0 });
        }
        let dest = place_new_task(&sys, &power, Watts(15.0)).unwrap();
        assert_eq!(dest, CpuId(2));
    }

    #[test]
    fn heterogeneous_budgets_affect_placement() {
        let mut sys = System::new(Topology::xseries445(false));
        let mut power = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
        // CPU 3 has a poor heat sink: a hot task there would push its
        // *ratio* far above average.
        power.set_max_power(CpuId(3), Watts(40.0));
        for c in 0..8 {
            spawn(&mut sys, CpuId(c), 40.0);
        }
        let dest = place_new_task(&sys, &power, Watts(61.0)).unwrap();
        assert_ne!(dest, CpuId(3), "hot task placed on the poorly cooled CPU");
    }

    #[test]
    fn empty_system_places_deterministically() {
        let (sys, power) = setup();
        assert_eq!(place_new_task(&sys, &power, Watts(45.0)), Some(CpuId(0)));
    }

    #[test]
    fn capacity_placement_prefers_underloaded_performance_cores() {
        let (mut sys, power) = setup();
        // CPUs 4..8 are efficiency cores at half capacity; every CPU
        // already runs one task. Count-wise all queues tie; a new task
        // must land on a performance core (1/1.0 < 1/0.5 effective).
        let caps: Vec<f64> = (0..8).map(|c| if c >= 4 { 0.5 } else { 1.0 }).collect();
        for c in 0..8 {
            spawn(&mut sys, CpuId(c), 40.0);
        }
        let dest = place_new_task_capacity(&sys, &power, Watts(45.0), Some(&caps)).unwrap();
        assert!(dest.0 < 4, "placed on an efficiency core {dest}");
        // Without capacities the legacy form is used verbatim.
        assert_eq!(
            place_new_task_capacity(&sys, &power, Watts(45.0), None),
            place_new_task(&sys, &power, Watts(45.0))
        );
    }
}
