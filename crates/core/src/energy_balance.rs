//! The merged energy-and-load balancing algorithm (Section 4.4, Fig. 4).
//!
//! Energy balancing levels the power consumption of CPUs whose
//! runqueues hold multiple tasks by combining hot tasks with cool tasks
//! on each CPU. It is merged with load balancing into one algorithm so
//! the two never undo each other's migrations, and it is pull-only and
//! distributed like Linux's balancer.
//!
//! Per domain level, bottom-up:
//!
//! 1. **Energy step** (skipped in domains whose CPUs share chip power,
//!    i.e. SMT siblings): find the CPU group with the highest average
//!    *runqueue power ratio*. If it is not the local group **and** the
//!    remote group is hotter in *both* metrics — thermal power ratio
//!    (slow; provides hysteresis) and runqueue power ratio (fast;
//!    forbids pulling an undue number of tasks) — pull a hot task from
//!    the hottest queue of that group, and push a cool task back if
//!    that created a load imbalance.
//! 2. **Load step**: find the group with the highest average runqueue
//!    length and pull tasks from its busiest queue, choosing *hot*
//!    tasks if the remote group is hotter and *cool* tasks if it is
//!    cooler, so load balancing does not create energy imbalances.

use crate::metrics::{
    group_runqueue_ratio, runqueue_power, runqueue_power_ratio, GroupRatioCache, PowerState,
};
use ebs_sched::{busiest_queued_cpu, BalanceOutcome, MigrationReason, System, TaskId};
use ebs_topology::{CpuId, SchedDomain};
use ebs_units::{SimTime, Watts};

/// Tunables of the merged balancer.
#[derive(Clone, Copy, Debug)]
pub struct EnergyBalanceConfig {
    /// Minimum `nr_running` difference before the load step moves
    /// tasks (as in the baseline balancer).
    pub min_imbalance: usize,
    /// The remote group must exceed the local group's *thermal power
    /// ratio* by this margin before the energy step acts. The thermal
    /// ratio moves with the RC time constant, so the margin translates
    /// into a minimum time between opposing decisions (hysteresis).
    pub thermal_ratio_margin: f64,
    /// The remote group must exceed the local group's *runqueue power
    /// ratio* by this margin. This metric reacts instantly to
    /// migrations and stops the balancer from over-pulling.
    pub runqueue_ratio_margin: f64,
    /// Whether the energy step runs at all; disabling it degrades the
    /// balancer to energy-*aware task selection* in the load step only
    /// (used by ablation experiments).
    pub energy_step_enabled: bool,
    /// Read group loads and power ratios from the incremental
    /// aggregate tree (amortised O(1) per group) instead of scanning
    /// every runqueue in the domain. Both paths make bitwise-identical
    /// decisions; forcing one only matters for measuring the
    /// pre-aggregate cost (`exp_balance_bench`) and regression-testing
    /// equivalence. `None` (the default) picks adaptively by machine
    /// size — scans below [`ebs_sched::AGGREGATE_CPU_THRESHOLD`]
    /// logical CPUs, aggregates at or above — which also skips the
    /// ratio-cache allocation on tiny machines.
    pub use_aggregates: Option<bool>,
}

impl Default for EnergyBalanceConfig {
    /// Margins calibrated on the Section 6.1 workload so that the
    /// balancer converges with a migration rate in the paper's range
    /// (a few dozen per 15 minutes) instead of chasing every phase
    /// swing of openssl/bzip2. Smaller margins balance tighter at the
    /// cost of many more migrations; the ablation experiment
    /// quantifies the trade-off.
    fn default() -> Self {
        EnergyBalanceConfig {
            min_imbalance: 2,
            thermal_ratio_margin: 0.10,
            runqueue_ratio_margin: 0.12,
            energy_step_enabled: true,
            use_aggregates: None,
        }
    }
}

impl EnergyBalanceConfig {
    /// Resolves the aggregate-vs-scan choice for a machine with
    /// `n_cpus` logical CPUs (see
    /// [`ebs_sched::AGGREGATE_CPU_THRESHOLD`]).
    pub fn resolve_aggregates(&self, n_cpus: usize) -> bool {
        self.use_aggregates
            .unwrap_or(n_cpus >= ebs_sched::AGGREGATE_CPU_THRESHOLD)
    }
}

/// Per-CPU periodic state of the merged balancer.
#[derive(Clone, Debug)]
pub struct EnergyAwareBalancer {
    cfg: EnergyBalanceConfig,
    next_balance: Vec<Vec<SimTime>>,
    /// Memoised group runqueue-power ratios (see [`GroupRatioCache`]);
    /// only allocated when the aggregate paths are in use, so small
    /// machines on the adaptive default stay allocation-lean.
    ratios: Option<GroupRatioCache>,
    /// Class-weighted compute capacity per logical CPU. `None` (every
    /// homogeneous machine) keeps the load step's exact legacy integer
    /// arithmetic; `Some` switches it to capacity-normalized effective
    /// loads, so a 3-deep efficiency queue reads as more loaded than a
    /// 3-deep performance queue.
    capacities: Option<Vec<f64>>,
}

impl EnergyAwareBalancer {
    /// Creates a balancer for systems shaped like `sys`. An
    /// unspecified `use_aggregates` resolves here, against the
    /// machine's size (see [`ebs_sched::AGGREGATE_CPU_THRESHOLD`]).
    pub fn new(sys: &System, mut cfg: EnergyBalanceConfig) -> Self {
        let aggregates = cfg.resolve_aggregates(sys.topology().n_cpus());
        cfg.use_aggregates = Some(aggregates);
        let next_balance = sys
            .topology()
            .cpu_ids()
            .map(|c| vec![SimTime::ZERO; sys.topology().domains(c).len()])
            .collect();
        let ratios = aggregates.then(|| GroupRatioCache::new(sys.topology()));
        EnergyAwareBalancer {
            cfg,
            next_balance,
            ratios,
            capacities: None,
        }
    }

    /// Installs class-weighted per-CPU capacities (see the
    /// `capacities` field). Pass `None` to restore the exact legacy
    /// homogeneous arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the table is not one finite positive value per CPU.
    pub fn set_capacities(&mut self, capacities: Option<Vec<f64>>) {
        if let Some(caps) = &capacities {
            assert_eq!(caps.len(), self.next_balance.len(), "one capacity per CPU");
            assert!(
                caps.iter().all(|c| c.is_finite() && *c > 0.0),
                "capacities must be finite and positive"
            );
        }
        self.capacities = capacities;
    }

    /// The installed capacity table, if any.
    pub fn capacities(&self) -> Option<&[f64]> {
        self.capacities.as_deref()
    }

    /// The configuration (with `use_aggregates` resolved).
    pub fn config(&self) -> &EnergyBalanceConfig {
        &self.cfg
    }

    /// Whether group selection reads the aggregate tree (resolved from
    /// the config and the machine size at construction).
    pub fn uses_aggregates(&self) -> bool {
        self.ratios.is_some()
    }

    /// The earliest instant any CPU's domain level is due for a
    /// periodic balancing pass (see
    /// [`ebs_sched::LoadBalancer::next_due`]).
    pub fn next_due(&self) -> SimTime {
        self.next_balance
            .iter()
            .flatten()
            .copied()
            .min()
            // No domain levels at all (degenerate one-CPU machines):
            // never due, not "due now" — ZERO here would floor a
            // variable-stride engine to tick steps forever.
            .unwrap_or(SimTime::from_micros(u64::MAX))
    }

    /// Runs the merged algorithm for `cpu` on every domain level whose
    /// balancing interval elapsed.
    pub fn run(&mut self, cpu: CpuId, sys: &mut System, power: &PowerState) -> BalanceOutcome {
        let now = sys.now();
        let mut outcome = BalanceOutcome::default();
        // Shared topology handle: iterating the domain stack while
        // mutating the system, without cloning a domain (whose group
        // lists span O(CPUs) at the top level) every pass.
        let topo = sys.topology_shared();
        for (level, domain) in topo.domains(cpu).iter().enumerate() {
            if now < self.next_balance[cpu.0][level] {
                continue;
            }
            self.next_balance[cpu.0][level] = now + domain.balance_interval();
            if self.cfg.energy_step_enabled && !domain.flags().share_cpu_power {
                outcome.pulled += energy_step(sys, cpu, domain, power, &self.cfg, &mut self.ratios);
            }
            outcome.pulled += load_step(
                sys,
                cpu,
                domain,
                power,
                &self.cfg,
                self.capacities.as_deref(),
            );
        }
        outcome
    }

    /// New-idle balancing, identical to the baseline's but choosing
    /// tasks energy-aware: when `cpu` just went idle, pull the task
    /// whose profile best matches what this CPU can afford.
    pub fn newidle(&mut self, cpu: CpuId, sys: &mut System, power: &PowerState) -> BalanceOutcome {
        let topo = sys.topology_shared();
        for domain in topo.domains(cpu) {
            let busiest = busiest_queued_cpu(sys, domain, cpu);
            if let Some(src) = busiest {
                if sys.rq(src).nr_queued() >= 1 && sys.nr_running(src) >= 2 {
                    // Pull hot tasks onto cool CPUs and vice versa.
                    let hottest_first = power.thermal_ratio(cpu) <= power.thermal_ratio(src);
                    let pulled = pull_sorted(
                        sys,
                        src,
                        cpu,
                        1,
                        MigrationReason::LoadBalance,
                        hottest_first,
                    );
                    if pulled > 0 {
                        return BalanceOutcome { pulled };
                    }
                }
            }
        }
        BalanceOutcome::default()
    }
}

/// The energy balancing step of Fig. 4 (left column). Returns tasks
/// pulled.
fn energy_step(
    sys: &mut System,
    cpu: CpuId,
    domain: &SchedDomain,
    power: &PowerState,
    cfg: &EnergyBalanceConfig,
    ratios: &mut Option<GroupRatioCache>,
) -> usize {
    let Some(local_idx) = domain.local_group_index(cpu) else {
        return 0;
    };
    // The group ratio reader: memoised against the aggregate tree's
    // generations (amortised O(1) per group) when the cache exists, or
    // the pre-aggregate full scan — both produce identical bits.
    let mut group_ratio = |sys: &System, i: usize| {
        let group = &domain.groups()[i];
        match ratios.as_mut() {
            Some(cache) => cache.group_ratio(sys, group, power),
            None => group_runqueue_ratio(sys, group, power),
        }
    };
    // Search the CPU group with the highest average power ratio.
    let Some((hot_idx, hot_rq_ratio)) = (0..domain.groups().len())
        .map(|i| (i, group_ratio(sys, i)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
    else {
        return 0;
    };
    // Group contains local CPU? Then there is nothing to pull here.
    if hot_idx == local_idx {
        return 0;
    }
    // Hysteresis: the remote group must be hotter in *both* metrics.
    let local_rq_ratio = group_ratio(sys, local_idx);
    let local_group = &domain.groups()[local_idx];
    let hot_group = &domain.groups()[hot_idx];
    if hot_rq_ratio <= local_rq_ratio + cfg.runqueue_ratio_margin {
        return 0;
    }
    if power.group_thermal_ratio(hot_group)
        <= power.group_thermal_ratio(local_group) + cfg.thermal_ratio_margin
    {
        return 0;
    }
    // Search the queue with the highest power ratio within the group.
    let Some(src) = hot_group.cpus().iter().copied().max_by(|&a, &b| {
        runqueue_power_ratio(sys, a, power).total_cmp(&runqueue_power_ratio(sys, b, power))
    }) else {
        return 0;
    };
    // The source queue itself must be hotter than the local queue in
    // both metrics as well.
    if runqueue_power_ratio(sys, src, power)
        <= runqueue_power_ratio(sys, cpu, power) + cfg.runqueue_ratio_margin
        || power.thermal_ratio(src) <= power.thermal_ratio(cpu) + cfg.thermal_ratio_margin
    {
        return 0;
    }
    // Migrate hot task(s) to the local CPU: the hottest waiting task
    // that is actually hotter than what the local queue averages —
    // otherwise the move would not transport heat.
    let local_power = runqueue_power(sys, cpu, power.idle_power());
    let Some(hot_task) = hottest_candidate(sys, src, |p| p > local_power) else {
        return 0;
    };
    if sys
        .migrate_queued(hot_task, cpu, MigrationReason::EnergyBalance)
        .is_err()
    {
        return 0;
    }
    let mut pulled = 1;
    // Created a load imbalance? Migrate cool task(s) back in exchange.
    if sys.nr_running(cpu) > sys.nr_running(src) {
        if let Some(cool_task) = coolest_candidate(sys, cpu, |id, p| {
            id != hot_task && p < sys.task(hot_task).profile()
        }) {
            if sys
                .migrate_queued(cool_task, src, MigrationReason::Exchange)
                .is_ok()
            {
                pulled += 1;
            }
        }
    }
    pulled
}

/// The load balancing step of Fig. 4 (right column). Returns tasks
/// pulled.
///
/// With `capacities`, loads are normalized by class-weighted compute
/// capacity: the busiest group is the one with the highest
/// `nr_running / capacity`, and the number of tasks to move solves the
/// effective-load equalisation `src_eff − n/c_src = dst_eff + n/c_dst`
/// instead of the integer halving. With unit capacities both formulas
/// coincide; `None` keeps the legacy integer arithmetic bit-exactly.
fn load_step(
    sys: &mut System,
    cpu: CpuId,
    domain: &SchedDomain,
    power: &PowerState,
    cfg: &EnergyBalanceConfig,
    capacities: Option<&[f64]>,
) -> usize {
    let Some(local_idx) = domain.local_group_index(cpu) else {
        return 0;
    };
    let busiest = match capacities {
        Some(_) => ebs_sched::find_busiest_group_capacity(sys, domain, local_idx),
        None if cfg.resolve_aggregates(sys.topology().n_cpus()) => {
            ebs_sched::find_busiest_group(sys, domain, local_idx)
        }
        None => ebs_sched::find_busiest_group_scan(sys, domain, local_idx),
    };
    let Some((busiest_idx, _)) = busiest else {
        return 0;
    };
    let busiest_group = &domain.groups()[busiest_idx];
    let Some(src) = ebs_sched::busiest_queue_in_group(sys, busiest_group) else {
        return 0;
    };
    let src_load = sys.nr_running(src);
    let dst_load = sys.nr_running(cpu);
    let n_move = match capacities {
        None => {
            if src_load < dst_load + cfg.min_imbalance {
                return 0;
            }
            (src_load - dst_load) / 2
        }
        Some(caps) => {
            let c_src = caps[src.0];
            let c_dst = caps[cpu.0];
            let src_eff = src_load as f64 / c_src;
            let dst_eff = dst_load as f64 / c_dst;
            // Moving n tasks shifts the effective loads by n/c each
            // way; equalisation at n = Δeff / (1/c_src + 1/c_dst).
            // The gate generalises `src − dst ≥ min_imbalance` (to
            // which it reduces when both capacities are 1).
            let n_f = (src_eff - dst_eff) / (1.0 / c_src + 1.0 / c_dst);
            if 2.0 * n_f < cfg.min_imbalance as f64 {
                return 0;
            }
            (n_f.floor() as usize).min(sys.rq(src).nr_queued())
        }
    };
    if n_move == 0 {
        return 0;
    }
    // Move hot tasks if the remote group is hotter, cool tasks if it is
    // cooler, so the load step does not create energy imbalances. In
    // shared-power (SMT) domains the energy restrictions do not apply;
    // thermal ratios of siblings are equal anyway, making the order
    // irrelevant there.
    let hottest_first = power.group_thermal_ratio(busiest_group)
        >= power.group_thermal_ratio(&domain.groups()[local_idx]);
    pull_sorted(
        sys,
        src,
        cpu,
        n_move,
        MigrationReason::LoadBalance,
        hottest_first,
    )
}

/// The hottest waiting (non-running) task on `src` whose profile
/// satisfies `pred`.
fn hottest_candidate<F>(sys: &System, src: CpuId, pred: F) -> Option<TaskId>
where
    F: Fn(Watts) -> bool,
{
    sys.rq(src)
        .iter_migration_candidates()
        .filter(|&id| pred(sys.task(id).profile()))
        .max_by(|&a, &b| sys.task(a).profile().0.total_cmp(&sys.task(b).profile().0))
}

/// The coolest waiting task on `src` satisfying `pred`.
fn coolest_candidate<F>(sys: &System, src: CpuId, pred: F) -> Option<TaskId>
where
    F: Fn(TaskId, Watts) -> bool,
{
    sys.rq(src)
        .iter_migration_candidates()
        .filter(|&id| pred(id, sys.task(id).profile()))
        .min_by(|&a, &b| sys.task(a).profile().0.total_cmp(&sys.task(b).profile().0))
}

/// Pulls up to `n` waiting tasks from `src` to `dst`, hottest or
/// coolest profiles first.
fn pull_sorted(
    sys: &mut System,
    src: CpuId,
    dst: CpuId,
    n: usize,
    reason: MigrationReason,
    hottest_first: bool,
) -> usize {
    if src == dst || n == 0 {
        return 0;
    }
    let mut candidates: Vec<TaskId> = sys.rq(src).iter_migration_candidates().collect();
    candidates.sort_by(|&a, &b| {
        let pa = sys.task(a).profile();
        let pb = sys.task(b).profile();
        let ord = pa.0.total_cmp(&pb.0);
        if hottest_first {
            ord.reverse()
        } else {
            ord
        }
    });
    let mut moved = 0;
    for id in candidates {
        if moved == n {
            break;
        }
        if sys.migrate_queued(id, dst, reason).is_ok() {
            moved += 1;
        }
    }
    moved
}

impl ebs_store::Snapshot for EnergyAwareBalancer {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The ratio cache is never serialized: its entries are bitwise
        // identical to a fresh member-order scan, so a restored
        // balancer simply starts all-stale and recomputes on demand.
        w.seq(&self.next_balance, |w, levels| {
            w.seq(levels, |w, &t| w.time(t));
        });
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let next_balance = r.seq(|r| r.seq(|r| r.time()))?;
        if next_balance.len() != self.next_balance.len()
            || next_balance
                .iter()
                .zip(&self.next_balance)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(ebs_store::StoreError::Invalid(
                "balancer timer table shaped unlike this topology".into(),
            ));
        }
        self.next_balance = next_balance;
        if let Some(ratios) = &mut self.ratios {
            ratios.mark_all_stale();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{PowerState, PowerStateConfig};
    use ebs_sched::TaskConfig;
    use ebs_topology::Topology;
    use ebs_units::SimDuration;

    fn setup() -> (System, PowerState) {
        let sys = System::new(Topology::xseries445(false));
        let power = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
        (sys, power)
    }

    fn spawn(sys: &mut System, cpu: CpuId, profile: f64) -> TaskId {
        sys.spawn(
            TaskConfig {
                initial_profile: Watts(profile),
                ..TaskConfig::default()
            },
            cpu,
        )
    }

    /// Drives the thermal power of a CPU to a steady value.
    fn heat(power: &mut PowerState, cpu: CpuId, watts: f64) {
        for _ in 0..5_000 {
            power.observe(cpu, Watts(watts), SimDuration::from_millis(100));
        }
    }

    #[test]
    fn pulls_hot_task_from_hot_group() {
        let (mut sys, mut power) = setup();
        // CPU 1 runs two hot tasks and is hot; CPU 0 runs two cool
        // tasks and is cool. Same load: the stock balancer would do
        // nothing.
        let hot_a = spawn(&mut sys, CpuId(1), 61.0);
        let _hot_b = spawn(&mut sys, CpuId(1), 60.0);
        let _cool_a = spawn(&mut sys, CpuId(0), 38.0);
        let _cool_b = spawn(&mut sys, CpuId(0), 37.0);
        heat(&mut power, CpuId(1), 60.0);
        heat(&mut power, CpuId(0), 38.0);

        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        let outcome = bal.run(CpuId(0), &mut sys, &power);
        assert!(outcome.pulled >= 1, "energy step did not act");
        // The hottest waiting task moved to CPU 0, and a cool task
        // moved back: load stays equal.
        assert_eq!(sys.task(hot_a).cpu(), CpuId(0));
        assert_eq!(sys.nr_running(CpuId(0)), 2);
        assert_eq!(sys.nr_running(CpuId(1)), 2);
        assert!(sys.stats().migrations_for(MigrationReason::EnergyBalance) >= 1);
        assert!(sys.stats().migrations_for(MigrationReason::Exchange) >= 1);
        sys.validate();
    }

    #[test]
    fn equal_heat_means_no_action() {
        let (mut sys, mut power) = setup();
        for c in 0..8 {
            spawn(&mut sys, CpuId(c), 50.0);
            spawn(&mut sys, CpuId(c), 50.0);
            heat(&mut power, CpuId(c), 50.0);
        }
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        for c in 0..8 {
            assert_eq!(bal.run(CpuId(c), &mut sys, &power).pulled, 0);
        }
        assert_eq!(sys.stats().migrations(), 0);
    }

    #[test]
    fn thermal_hysteresis_blocks_fresh_imbalance() {
        // Runqueue power says CPU 1 is hotter, but its thermal power
        // has not caught up yet (e.g. the hot tasks just arrived
        // there): the energy step must wait. This is the ping-pong
        // guard.
        let (mut sys, mut power) = setup();
        spawn(&mut sys, CpuId(1), 61.0);
        spawn(&mut sys, CpuId(1), 60.0);
        spawn(&mut sys, CpuId(0), 38.0);
        spawn(&mut sys, CpuId(0), 37.0);
        // Both CPUs at the same (cool) thermal power.
        heat(&mut power, CpuId(0), 30.0);
        heat(&mut power, CpuId(1), 30.0);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        assert_eq!(bal.run(CpuId(0), &mut sys, &power).pulled, 0);
    }

    #[test]
    fn runqueue_ratio_guard_blocks_overpull() {
        // Thermal power says CPU 1 is hot, but its runqueue is already
        // cooler than ours (the hot task has left): pulling would
        // over-balance — exactly the "replaced by an imbalance in the
        // opposite direction" failure of temperature-only balancing.
        let (mut sys, mut power) = setup();
        spawn(&mut sys, CpuId(1), 38.0);
        spawn(&mut sys, CpuId(1), 37.0);
        spawn(&mut sys, CpuId(0), 61.0);
        spawn(&mut sys, CpuId(0), 60.0);
        heat(&mut power, CpuId(1), 60.0); // Still hot from the past.
        heat(&mut power, CpuId(0), 38.0);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        assert_eq!(bal.run(CpuId(0), &mut sys, &power).pulled, 0);
        assert_eq!(sys.stats().migrations(), 0);
    }

    #[test]
    fn energy_step_does_not_create_load_imbalance() {
        let (mut sys, mut power) = setup();
        // Hot CPU with 3 tasks, cool CPU with 2: pulling one hot task
        // equalises load (3->2, 2->3 would overshoot; exchange brings
        // it back).
        spawn(&mut sys, CpuId(1), 61.0);
        spawn(&mut sys, CpuId(1), 60.0);
        spawn(&mut sys, CpuId(1), 59.0);
        spawn(&mut sys, CpuId(0), 38.0);
        spawn(&mut sys, CpuId(0), 37.0);
        heat(&mut power, CpuId(1), 60.0);
        heat(&mut power, CpuId(0), 38.0);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        bal.run(CpuId(0), &mut sys, &power);
        let l0 = sys.nr_running(CpuId(0));
        let l1 = sys.nr_running(CpuId(1));
        assert!(
            (l0 as i64 - l1 as i64).abs() <= 1,
            "energy step created load imbalance: {l0} vs {l1}"
        );
        sys.validate();
    }

    #[test]
    fn load_step_moves_cool_tasks_to_hot_cpu() {
        let (mut sys, mut power) = setup();
        // CPU 1 is overloaded with mixed tasks; CPU 0 is *hotter*
        // thermally. The load step must prefer pulling the cool tasks.
        let _h = spawn(&mut sys, CpuId(1), 61.0);
        let cool = spawn(&mut sys, CpuId(1), 30.0);
        spawn(&mut sys, CpuId(1), 45.0);
        spawn(&mut sys, CpuId(1), 44.0);
        heat(&mut power, CpuId(0), 55.0);
        heat(&mut power, CpuId(1), 40.0);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        let outcome = bal.run(CpuId(0), &mut sys, &power);
        assert!(outcome.pulled >= 1);
        // The coolest task is among those moved.
        assert_eq!(sys.task(cool).cpu(), CpuId(0));
        sys.validate();
    }

    #[test]
    fn newidle_prefers_hot_task_for_cool_cpu() {
        let (mut sys, mut power) = setup();
        let hot = spawn(&mut sys, CpuId(1), 61.0);
        let _cool = spawn(&mut sys, CpuId(1), 30.0);
        spawn(&mut sys, CpuId(1), 45.0);
        heat(&mut power, CpuId(1), 50.0);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        let outcome = bal.newidle(CpuId(0), &mut sys, &power);
        assert_eq!(outcome.pulled, 1);
        assert_eq!(sys.task(hot).cpu(), CpuId(0));
        sys.validate();
    }

    #[test]
    fn disabled_energy_step_skips_pulls() {
        let (mut sys, mut power) = setup();
        spawn(&mut sys, CpuId(1), 61.0);
        spawn(&mut sys, CpuId(1), 60.0);
        spawn(&mut sys, CpuId(0), 38.0);
        spawn(&mut sys, CpuId(0), 37.0);
        heat(&mut power, CpuId(1), 60.0);
        heat(&mut power, CpuId(0), 38.0);
        let cfg = EnergyBalanceConfig {
            energy_step_enabled: false,
            ..EnergyBalanceConfig::default()
        };
        let mut bal = EnergyAwareBalancer::new(&sys, cfg);
        assert_eq!(bal.run(CpuId(0), &mut sys, &power).pulled, 0);
        assert_eq!(sys.stats().migrations(), 0);
    }

    #[test]
    fn aggregate_default_flips_at_the_documented_threshold() {
        // Same adaptive default as the stock balancer: scans (and no
        // ratio-cache allocation) below 16 logical CPUs, aggregates at
        // and above; explicit settings win.
        let small = System::new(Topology::xseries445(false)); // 8 CPUs
        let at_threshold = System::new(Topology::xseries445(true)); // 16 CPUs
        let bal = EnergyAwareBalancer::new(&small, EnergyBalanceConfig::default());
        assert!(!bal.uses_aggregates(), "8 CPUs must default to scans");
        assert_eq!(bal.config().use_aggregates, Some(false));
        let bal = EnergyAwareBalancer::new(&at_threshold, EnergyBalanceConfig::default());
        assert!(bal.uses_aggregates(), "16 CPUs must default to aggregates");
        for (sys, forced) in [(&small, true), (&at_threshold, false)] {
            let bal = EnergyAwareBalancer::new(
                sys,
                EnergyBalanceConfig {
                    use_aggregates: Some(forced),
                    ..EnergyBalanceConfig::default()
                },
            );
            assert_eq!(bal.uses_aggregates(), forced);
        }
    }

    #[test]
    fn capacity_normalized_load_step_drains_efficiency_cores() {
        // 8 CPUs; CPUs 4..8 are "efficiency" cores at 0.55 capacity.
        let (mut sys, mut power) = setup();
        let caps: Vec<f64> = (0..8).map(|c| if c >= 4 { 0.55 } else { 1.0 }).collect();
        sys.set_cpu_capacities(&caps);
        // Equal raw load everywhere: 4 tasks per CPU. Count-blind
        // balancing sees nothing to do; capacity-normalized balancing
        // sees the efficiency cores at 4/0.55 ≈ 7.3 effective.
        for c in 0..8 {
            for _ in 0..4 {
                spawn(&mut sys, CpuId(c), 45.0);
            }
            heat(&mut power, CpuId(c), 45.0);
        }
        let mut blind = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        assert_eq!(blind.run(CpuId(0), &mut sys, &power).pulled, 0);
        let mut aware = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        aware.set_capacities(Some(caps));
        let pulled: usize = (0..8)
            .map(|c| aware.run(CpuId(c), &mut sys, &power).pulled)
            .sum();
        assert!(pulled >= 1, "capacity-aware load step did not act");
        // Tasks flowed off the low-capacity CPUs, never onto them.
        let eff_load: usize = (4..8).map(|c| sys.nr_running(CpuId(c))).sum();
        assert!(eff_load < 16, "efficiency cores kept their full load");
        sys.validate();
    }

    #[test]
    fn unit_capacities_match_legacy_decisions() {
        // With every capacity at 1.0 the capacity path must reach the
        // same n_move as the legacy integer path on an imbalance.
        let (mut sys, mut power) = setup();
        for _ in 0..5 {
            spawn(&mut sys, CpuId(1), 45.0);
        }
        spawn(&mut sys, CpuId(0), 45.0);
        for c in 0..8 {
            heat(&mut power, CpuId(c), 45.0);
        }
        let mut legacy = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        let mut sys2 = sys.clone();
        let mut unit = EnergyAwareBalancer::new(&sys2, EnergyBalanceConfig::default());
        unit.set_capacities(Some(vec![1.0; 8]));
        let a = legacy.run(CpuId(0), &mut sys, &power).pulled;
        let b = unit.run(CpuId(0), &mut sys2, &power).pulled;
        assert_eq!(a, b);
        for c in 0..8 {
            assert_eq!(sys.nr_running(CpuId(c)), sys2.nr_running(CpuId(c)));
        }
    }

    #[test]
    fn smt_domain_skips_energy_step() {
        // With SMT, level 0 shares chip power; the energy step must not
        // move tasks between siblings even under a blatant "imbalance".
        let mut sys = System::new(Topology::xseries445(true));
        let power = {
            let mut p = PowerState::uniform(16, Watts(20.0), PowerStateConfig::default());
            heat(&mut p, CpuId(0), 20.0);
            p
        };
        spawn(&mut sys, CpuId(0), 61.0);
        spawn(&mut sys, CpuId(0), 60.0);
        spawn(&mut sys, CpuId(8), 10.0);
        spawn(&mut sys, CpuId(8), 11.0);
        let mut bal = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
        // Balance only the sibling (level 0 is its first domain).
        let before = sys.stats().migrations();
        bal.run(CpuId(8), &mut sys, &power);
        // Any migrations that happened must not be EnergyBalance ones
        // between siblings (the load is equal, so no load moves
        // either).
        assert_eq!(sys.stats().migrations(), before);
    }
}
