//! Hot task migration (Section 4.5, Fig. 5).
//!
//! Energy balancing needs multiple tasks per queue to combine. When a
//! CPU runs a *single* hot task, the policy instead migrates that task
//! to a cooler CPU at the moment the hot CPU approaches the temperature
//! limit at which throttling would start. The destination must be
//! *considerably* cooler — a minimum thermal-power gap — which bounds
//! the migration frequency.
//!
//! The search for a destination walks the scheduler-domain hierarchy
//! bottom-up. For each domain, the coolest CPU is examined: if it is
//! cool enough and idle, the hot task moves there; if it is cool enough
//! and runs a single *cool* task, the two tasks are exchanged (so no
//! load imbalance arises); otherwise the search ascends one level. If
//! the top level yields nothing, every CPU is hot and the task stays —
//! throttling is then unavoidable.
//!
//! SMT adaptations (Section 4.7): the trigger compares the *sum* of the
//! sibling thermal powers against the package budget (only physical
//! processors overheat), candidate coolness is judged per core, and
//! the sibling level is skipped when searching for a destination
//! (migrating to an SMT sibling does not cool anything).
//!
//! CMP adaptation (Section 7): on multi-core packages the destination
//! search naturally includes the *other cores of the same die* — the
//! core-level scheduler domain is walked before the node level, so a
//! cooler core one die away is preferred over a cooler package two
//! migrations' worth of cache misses away.

use crate::metrics::PowerState;
use ebs_sched::{MigrationReason, System, TaskId};
use ebs_topology::{CpuId, Topology};
use ebs_units::Watts;

/// Tunables of hot task migration.
#[derive(Clone, Copy, Debug)]
pub struct HotTaskConfig {
    /// Trigger fraction: act when the package thermal power reaches
    /// this fraction of the package maximum power ("comes closer to
    /// the CPU's maximum power than a predefined threshold").
    pub trigger_fraction: f64,
    /// Minimum gap between source and destination per-CPU thermal
    /// power, expressed as a fraction of the source CPU's maximum
    /// power ("the destination CPU must be considerably cooler ... a
    /// threshold by which the thermal powers must at least differ").
    pub min_gap_fraction: f64,
    /// A destination's running task counts as *cool* (exchangeable) if
    /// its profile is below the hot task's profile by this many watts.
    pub exchange_margin: Watts,
}

impl Default for HotTaskConfig {
    fn default() -> Self {
        HotTaskConfig {
            trigger_fraction: 0.95,
            min_gap_fraction: 0.20,
            exchange_margin: Watts(5.0),
        }
    }
}

/// The decision the migrator reached for a hot CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotMigration {
    /// The hot task moved to an idle CPU.
    ToIdle { task: TaskId, dest: CpuId },
    /// The hot task swapped places with a cool task.
    Exchanged {
        task: TaskId,
        dest: CpuId,
        cool_task: TaskId,
    },
}

/// Hot task migration policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotTaskMigrator {
    cfg: HotTaskConfig,
}

impl HotTaskMigrator {
    /// Creates a migrator with the given tunables.
    pub fn new(cfg: HotTaskConfig) -> Self {
        HotTaskMigrator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &HotTaskConfig {
        &self.cfg
    }

    /// Whether `cpu` currently satisfies the migration trigger: it runs
    /// exactly one task and its *package* thermal power has reached the
    /// trigger fraction of the package budget.
    pub fn triggered(&self, cpu: CpuId, sys: &System, power: &PowerState) -> bool {
        let rq = sys.rq(cpu);
        if rq.nr_running() != 1 || rq.current().is_none() {
            return false;
        }
        let pkg = package_cpus(sys.topology(), cpu);
        let thermal = power.thermal_power_sum(&pkg);
        let budget = power.max_power_sum(&pkg);
        thermal.0 >= budget.0 * self.cfg.trigger_fraction
    }

    /// Checks the trigger and, if it fires, searches for a destination
    /// and performs the migration. Returns what happened, if anything.
    ///
    /// The caller (the simulation engine) is responsible for context
    /// switching the CPUs whose running tasks were moved, as Linux's
    /// migration thread would.
    pub fn run(&self, cpu: CpuId, sys: &mut System, power: &PowerState) -> Option<HotMigration> {
        if !self.triggered(cpu, sys, power) {
            return None;
        }
        let hot_task = sys.current(cpu)?;
        let hot_profile = sys.task(hot_task).profile();
        let src_thermal = core_avg_thermal(sys.topology(), cpu, power);
        let min_gap = power.max_power(cpu) * self.cfg.min_gap_fraction;

        // Shared handle instead of a deep clone (the clone copied
        // every domain stack on each triggered check).
        let topo_arc = sys.topology_shared();
        let topo = &*topo_arc;
        for domain in topo.domains(cpu) {
            // Migrating to an SMT sibling does not cool anything: skip
            // shared-power domains.
            if domain.flags().share_cpu_power {
                continue;
            }
            // Search the coolest CPU within the domain (outside the
            // source core), judging coolness per core and preferring
            // idle CPUs among a core's hardware threads.
            let candidate = domain
                .span()
                .filter(|&c| !topo.same_core(c, cpu))
                .min_by(|&a, &b| {
                    let ka = candidate_key(topo, sys, power, a);
                    let kb = candidate_key(topo, sys, power, b);
                    // Total order so a NaN thermal power on a
                    // degenerate machine skews instead of panics.
                    ka.0.total_cmp(&kb.0).then((ka.1, ka.2).cmp(&(kb.1, kb.2)))
                });
            let Some(dest) = candidate else {
                continue;
            };
            // CPU cool enough?
            let dest_thermal = core_avg_thermal(topo, dest, power);
            if src_thermal - dest_thermal < min_gap {
                continue; // Ascend one level.
            }
            // CPU idle?
            if sys.rq(dest).is_idle() {
                sys.migrate_running(cpu, dest, MigrationReason::HotTask)
                    .expect("triggered CPU has a running task");
                return Some(HotMigration::ToIdle {
                    task: hot_task,
                    dest,
                });
            }
            // CPU running (exactly) a cool task? Exchange the tasks so
            // no load imbalance arises.
            if sys.rq(dest).nr_running() == 1 {
                if let Some(cool_task) = sys.current(dest) {
                    if sys.task(cool_task).profile() + self.cfg.exchange_margin <= hot_profile {
                        sys.migrate_running(dest, cpu, MigrationReason::Exchange)
                            .expect("destination has a running task");
                        sys.migrate_running(cpu, dest, MigrationReason::HotTask)
                            .expect("source still has its running task");
                        return Some(HotMigration::Exchanged {
                            task: hot_task,
                            dest,
                            cool_task,
                        });
                    }
                }
            }
            // Neither idle nor running a cool task: ascend.
        }
        None
    }

    /// Capacity-aware [`HotTaskMigrator::run`]: with a class-capacity
    /// table, the destination search prefers the *highest-capacity*
    /// CPU among those that satisfy the coolness gap, coolness and
    /// determinism breaking ties. A hot task is by construction a
    /// throughput-heavy one — parking it on a sufficiently cool
    /// efficiency core when a cool performance core also qualifies
    /// trades the thermal win for a throughput collapse. `None`
    /// delegates to the exact legacy search.
    pub fn run_with_capacities(
        &self,
        cpu: CpuId,
        sys: &mut System,
        power: &PowerState,
        capacities: Option<&[f64]>,
    ) -> Option<HotMigration> {
        let Some(caps) = capacities else {
            return self.run(cpu, sys, power);
        };
        if !self.triggered(cpu, sys, power) {
            return None;
        }
        let hot_task = sys.current(cpu)?;
        let hot_profile = sys.task(hot_task).profile();
        let src_thermal = core_avg_thermal(sys.topology(), cpu, power);
        let min_gap = power.max_power(cpu) * self.cfg.min_gap_fraction;

        let topo_arc = sys.topology_shared();
        let topo = &*topo_arc;
        for domain in topo.domains(cpu) {
            if domain.flags().share_cpu_power {
                continue;
            }
            // Only gap-satisfying candidates compete, ranked capacity
            // first (descending), then the legacy key.
            let candidate = domain
                .span()
                .filter(|&c| !topo.same_core(c, cpu))
                .filter(|&c| src_thermal - core_avg_thermal(topo, c, power) >= min_gap)
                .min_by(|&a, &b| {
                    let ka = candidate_key(topo, sys, power, a);
                    let kb = candidate_key(topo, sys, power, b);
                    caps[b.0]
                        .total_cmp(&caps[a.0])
                        .then(ka.0.total_cmp(&kb.0))
                        .then((ka.1, ka.2).cmp(&(kb.1, kb.2)))
                });
            let Some(dest) = candidate else {
                continue; // Ascend one level.
            };
            if sys.rq(dest).is_idle() {
                sys.migrate_running(cpu, dest, MigrationReason::HotTask)
                    .expect("triggered CPU has a running task");
                return Some(HotMigration::ToIdle {
                    task: hot_task,
                    dest,
                });
            }
            if sys.rq(dest).nr_running() == 1 {
                if let Some(cool_task) = sys.current(dest) {
                    if sys.task(cool_task).profile() + self.cfg.exchange_margin <= hot_profile {
                        sys.migrate_running(dest, cpu, MigrationReason::Exchange)
                            .expect("destination has a running task");
                        sys.migrate_running(cpu, dest, MigrationReason::HotTask)
                            .expect("source still has its running task");
                        return Some(HotMigration::Exchanged {
                            task: hot_task,
                            dest,
                            cool_task,
                        });
                    }
                }
            }
        }
        None
    }
}

/// All logical CPUs of `cpu`'s package (including `cpu`).
fn package_cpus(topo: &Topology, cpu: CpuId) -> Vec<CpuId> {
    topo.cpus_of_package(topo.package_of(cpu))
}

/// Per-logical-CPU average thermal power of `cpu`'s core — the
/// coolness metric for destination candidates. Judging per core
/// prevents "cool" idle siblings of hot cores from attracting the
/// task. On single-core packages (the paper's machine) this equals
/// the package average.
fn core_avg_thermal(topo: &Topology, cpu: CpuId, power: &PowerState) -> Watts {
    let core = topo.cpus_of_core(topo.core_of(cpu));
    power.thermal_power_sum(&core) / core.len() as f64
}

/// Sort key for destination candidates: core coolness first, then
/// prefer idle CPUs, then lower ids for determinism.
fn candidate_key(
    topo: &Topology,
    sys: &System,
    power: &PowerState,
    cpu: CpuId,
) -> (f64, usize, usize) {
    (
        core_avg_thermal(topo, cpu, power).0,
        sys.rq(cpu).nr_running(),
        cpu.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{PowerState, PowerStateConfig};
    use ebs_sched::TaskConfig;
    use ebs_topology::Topology;
    use ebs_units::SimDuration;

    fn heat(power: &mut PowerState, cpu: CpuId, watts: f64) {
        for _ in 0..5_000 {
            power.observe(cpu, Watts(watts), SimDuration::from_millis(100));
        }
    }

    fn spawn_running(sys: &mut System, cpu: CpuId, profile: f64) -> TaskId {
        let id = sys.spawn(
            TaskConfig {
                initial_profile: Watts(profile),
                ..TaskConfig::default()
            },
            cpu,
        );
        sys.context_switch(cpu);
        id
    }

    fn setup_no_smt() -> (System, PowerState) {
        let sys = System::new(Topology::xseries445(false));
        let power = PowerState::uniform(8, Watts(47.0), PowerStateConfig::default());
        (sys, power)
    }

    #[test]
    fn trigger_requires_single_task_and_heat() {
        let (mut sys, mut power) = setup_no_smt();
        let m = HotTaskMigrator::default();
        // Idle CPU: no trigger.
        assert!(!m.triggered(CpuId(0), &sys, &power));
        let _hot = spawn_running(&mut sys, CpuId(0), 61.0);
        // Cool CPU: no trigger yet.
        assert!(!m.triggered(CpuId(0), &sys, &power));
        heat(&mut power, CpuId(0), 61.0);
        assert!(m.triggered(CpuId(0), &sys, &power));
        // Two tasks: energy balancing territory, not hot migration.
        sys.spawn(TaskConfig::default(), CpuId(0));
        assert!(!m.triggered(CpuId(0), &sys, &power));
    }

    #[test]
    fn migrates_to_coolest_idle_cpu() {
        let (mut sys, mut power) = setup_no_smt();
        let hot = spawn_running(&mut sys, CpuId(0), 61.0);
        heat(&mut power, CpuId(0), 61.0);
        // CPU 2 is slightly warm, CPU 1 and 3 are cold.
        heat(&mut power, CpuId(2), 20.0);
        let m = HotTaskMigrator::default();
        let result = m.run(CpuId(0), &mut sys, &power).unwrap();
        match result {
            HotMigration::ToIdle { task, dest } => {
                assert_eq!(task, hot);
                // Coolest idle CPU on the same node, lowest id tie-break.
                assert_eq!(dest, CpuId(1));
            }
            other => panic!("expected idle migration, got {other:?}"),
        }
        assert_eq!(sys.task(hot).cpu(), CpuId(1));
        assert_eq!(sys.current(CpuId(0)), None);
        sys.validate();
    }

    #[test]
    fn prefers_same_node_destination() {
        let (mut sys, mut power) = setup_no_smt();
        let hot = spawn_running(&mut sys, CpuId(0), 61.0);
        heat(&mut power, CpuId(0), 61.0);
        // Node-0 CPUs warm but eligible; node-1 CPUs ice cold.
        for c in 1..4 {
            heat(&mut power, CpuId(c), 25.0);
        }
        let m = HotTaskMigrator::default();
        let result = m.run(CpuId(0), &mut sys, &power).unwrap();
        if let HotMigration::ToIdle { dest, .. } = result {
            assert!(
                sys.topology().same_node(dest, CpuId(0)),
                "crossed node though a same-node CPU was cool enough"
            );
        }
        let _ = hot;
    }

    #[test]
    fn exchanges_with_cool_task_when_no_idle_cpu() {
        let (mut sys, mut power) = setup_no_smt();
        let hot = spawn_running(&mut sys, CpuId(0), 61.0);
        // Every other CPU runs a cool task.
        let mut cool_ids = Vec::new();
        for c in 1..8 {
            cool_ids.push(spawn_running(&mut sys, CpuId(c), 30.0));
            heat(&mut power, CpuId(c), 30.0);
        }
        heat(&mut power, CpuId(0), 61.0);
        let m = HotTaskMigrator::default();
        let result = m.run(CpuId(0), &mut sys, &power).unwrap();
        match result {
            HotMigration::Exchanged {
                task,
                dest,
                cool_task,
            } => {
                assert_eq!(task, hot);
                assert_eq!(sys.task(hot).cpu(), dest);
                // The cool task came back to the hot CPU: no load
                // imbalance.
                assert_eq!(sys.task(cool_task).cpu(), CpuId(0));
                assert_eq!(sys.nr_running(CpuId(0)), 1);
                assert_eq!(sys.nr_running(dest), 1);
            }
            other => panic!("expected exchange, got {other:?}"),
        }
        sys.validate();
    }

    #[test]
    fn stays_put_when_all_cpus_hot() {
        // "If no suitable CPU is found after searching the top-level
        // domain, all of the system's CPUs are hot and the hot task
        // must remain" — throttling follows.
        let (mut sys, mut power) = setup_no_smt();
        let hot = spawn_running(&mut sys, CpuId(0), 61.0);
        for c in 0..8 {
            heat(&mut power, CpuId(c), 61.0);
            if c > 0 {
                spawn_running(&mut sys, CpuId(c), 61.0);
            }
        }
        let m = HotTaskMigrator::default();
        assert!(m.run(CpuId(0), &mut sys, &power).is_none());
        assert_eq!(sys.task(hot).cpu(), CpuId(0));
    }

    #[test]
    fn gap_threshold_blocks_marginal_moves() {
        let (mut sys, mut power) = setup_no_smt();
        let _hot = spawn_running(&mut sys, CpuId(0), 61.0);
        heat(&mut power, CpuId(0), 47.0);
        // All other CPUs only slightly cooler than the source.
        for c in 1..8 {
            heat(&mut power, CpuId(c), 44.0);
        }
        let m = HotTaskMigrator::default();
        assert!(m.run(CpuId(0), &mut sys, &power).is_none());
        assert_eq!(sys.stats().migrations(), 0);
    }

    #[test]
    fn capacity_search_prefers_cool_performance_core() {
        let (mut sys, mut power) = setup_no_smt();
        let hot = spawn_running(&mut sys, CpuId(0), 61.0);
        heat(&mut power, CpuId(0), 61.0);
        // Odd CPUs are efficiency cores. On the source node, CPU 1
        // (efficiency) is the coolest CPU but CPU 2 (performance) also
        // satisfies the gap: the legacy search picks CPU 1, the
        // capacity-aware search must prefer CPU 2.
        heat(&mut power, CpuId(1), 2.0);
        heat(&mut power, CpuId(2), 10.0);
        for c in 3..8 {
            heat(&mut power, CpuId(c), 40.0);
        }
        let caps: Vec<f64> = (0..8)
            .map(|c| if c % 2 == 1 { 0.55 } else { 1.0 })
            .collect();
        let m = HotTaskMigrator::default();
        let mut legacy_sys = sys.clone();
        let legacy = m.run(CpuId(0), &mut legacy_sys, &power).unwrap();
        assert!(
            matches!(legacy, HotMigration::ToIdle { dest, .. } if dest == CpuId(1)),
            "legacy search should pick the coolest CPU: {legacy:?}"
        );
        let aware = m
            .run_with_capacities(CpuId(0), &mut sys, &power, Some(&caps))
            .unwrap();
        match aware {
            HotMigration::ToIdle { task, dest } => {
                assert_eq!(task, hot);
                assert_eq!(dest, CpuId(2), "hot task parked on an efficiency core");
            }
            other => panic!("expected idle migration, got {other:?}"),
        }
        sys.validate();
    }

    #[test]
    fn smt_trigger_uses_package_sum_and_skips_siblings() {
        let mut sys = System::new(Topology::xseries445(true));
        // Per-logical budget 20 W (40 W package, Section 6.4).
        let mut power = PowerState::uniform(16, Watts(20.0), PowerStateConfig::default());
        let hot = spawn_running(&mut sys, CpuId(0), 61.0);
        // CPU 0 runs bitcnts (61 W), sibling CPU 8 idles at 6.8 W:
        // package sum ~67.8 W >= 0.95 * 40 W.
        heat(&mut power, CpuId(0), 61.0);
        heat(&mut power, CpuId(8), 6.8);
        let m = HotTaskMigrator::default();
        assert!(m.triggered(CpuId(0), &sys, &power));
        let result = m.run(CpuId(0), &mut sys, &power).unwrap();
        match result {
            HotMigration::ToIdle { task, dest } => {
                assert_eq!(task, hot);
                // Never the sibling (CPU 8), and same node preferred.
                assert!(!sys.topology().same_package(dest, CpuId(0)));
                assert!(sys.topology().same_node(dest, CpuId(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        sys.validate();
    }

    #[test]
    fn smt_cool_sibling_of_hot_package_is_not_a_destination() {
        let mut sys = System::new(Topology::xseries445(true));
        let mut power = PowerState::uniform(16, Watts(20.0), PowerStateConfig::default());
        let _hot = spawn_running(&mut sys, CpuId(0), 61.0);
        heat(&mut power, CpuId(0), 61.0);
        heat(&mut power, CpuId(8), 6.8);
        // Package 1 (CPUs 1 and 9): CPU 1 runs hot, CPU 9 idles and
        // looks cold in isolation, but the *package* is hot.
        spawn_running(&mut sys, CpuId(1), 61.0);
        heat(&mut power, CpuId(1), 61.0);
        heat(&mut power, CpuId(9), 6.8);
        // All other packages cold.
        let m = HotTaskMigrator::default();
        let result = m.run(CpuId(0), &mut sys, &power).unwrap();
        if let HotMigration::ToIdle { dest, .. } = result {
            assert_ne!(sys.topology().package_of(dest), ebs_topology::PackageId(1));
        }
    }
}
