//! Energy-aware multiprocessor scheduling — the primary contribution of
//! Merkel & Bellosa, *Balancing Power Consumption in Multiprocessor
//! Systems* (EuroSys 2006).
//!
//! The crate implements the paper's policy layer on top of the
//! `ebs-sched` substrate:
//!
//! - [`EnergyEstimator`] (Section 3.2): reads the event-monitoring
//!   counters on every task switch and timeslice end and converts the
//!   deltas into energy via the calibrated linear model.
//! - Task energy profiles (Section 3.3) live on `ebs_sched::Task`; the
//!   estimator feeds them through the variable-period exponential
//!   average.
//! - [`PowerState`] (Section 4.3): the per-CPU scheduling metrics —
//!   *thermal power* (an exponential average calibrated to the RC time
//!   constant, so it tracks temperature while staying a power),
//!   *maximum power* (the per-CPU budget derived from its cooling), and
//!   the *runqueue power*/*thermal power ratios* built from them.
//! - [`EnergyAwareBalancer`] (Section 4.4, Fig. 4): the merged
//!   energy-and-load balancing algorithm walking the scheduler-domain
//!   hierarchy.
//! - [`HotTaskMigrator`] (Section 4.5, Fig. 5): migrating a lone hot
//!   task away from a nearly-overheating CPU, with the SMT adaptations
//!   of Section 4.7.
//! - [`PlacementTable`] / [`place_new_task`] (Section 4.6): initial
//!   placement of new tasks using first-timeslice energy per binary.

mod energy_balance;
mod estimator;
mod hot_migration;
mod metrics;
mod placement;

pub use energy_balance::{EnergyAwareBalancer, EnergyBalanceConfig};
pub use estimator::EnergyEstimator;
pub use hot_migration::{HotMigration, HotTaskConfig, HotTaskMigrator};
pub use metrics::{
    group_runqueue_ratio, runqueue_power, runqueue_power_ratio, GroupRatioCache, PowerState,
    PowerStateConfig,
};
pub use placement::{place_new_task, place_new_task_capacity, PlacementTable};
