//! The calculation parameters of energy-aware scheduling (Section 4.3).
//!
//! The paper's key observation: power and temperature have very
//! different time constants, and an algorithm using only one of them
//! misbehaves (power-only balancing ping-pongs; temperature-only
//! balancing over-balances). The scheduler therefore works with *both*:
//!
//! - **Runqueue power**: the average of the energy profiles of all
//!   tasks in a CPU's runqueue — reacts *immediately* to migrations.
//! - **Thermal power**: a per-CPU exponential average of estimated
//!   power calibrated to the RC time constant — follows temperature,
//!   but keeps the dimension of a power.
//! - **Maximum power**: the largest sustained power the CPU endures
//!   without overheating; CPU-specific because cooling differs.
//! - The **ratios** of the first two to the third are what the
//!   balancing policies actually compare.

use ebs_sched::System;
use ebs_thermal::PowerAverage;
use ebs_topology::{CpuGroup, CpuId, GroupUnit, Topology};
use ebs_units::{SimDuration, Watts};

/// Configuration of the per-CPU power metrics.
#[derive(Clone, Copy, Debug)]
pub struct PowerStateConfig {
    /// Standard sampling period of the thermal-power average (one
    /// timeslice).
    pub standard_period: SimDuration,
    /// Time constant the thermal-power average is calibrated to — the
    /// RC constant of the processor's thermal model (Section 4.3:
    /// "choosing an appropriate weight p ... that corresponds to the
    /// time constant of the exponential function from the thermal
    /// model").
    pub time_constant: SimDuration,
    /// Power attributed to an idle logical CPU; used as the runqueue
    /// power of an empty queue and as the initial thermal power.
    pub idle_power: Watts,
}

impl Default for PowerStateConfig {
    fn default() -> Self {
        PowerStateConfig {
            standard_period: SimDuration::from_millis(100),
            time_constant: SimDuration::from_micros(14_960_000),
            idle_power: Watts(6.8),
        }
    }
}

/// Per-CPU scheduling metrics state.
#[derive(Clone, Debug)]
pub struct PowerState {
    thermal: Vec<PowerAverage>,
    max_power: Vec<Watts>,
    idle_power: Watts,
    /// Bumped when a budget changes; caches of budget-derived values
    /// (the group ratio cache) key on it.
    budget_gen: u64,
}

impl PowerState {
    /// Creates metrics for `n_cpus` logical CPUs, each with its own
    /// maximum power budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_powers` length differs from `n_cpus`.
    pub fn new(n_cpus: usize, max_powers: &[Watts], cfg: PowerStateConfig) -> Self {
        assert_eq!(max_powers.len(), n_cpus, "one max power per CPU required");
        PowerState {
            thermal: (0..n_cpus)
                .map(|_| {
                    PowerAverage::with_time_constant(
                        cfg.idle_power,
                        cfg.standard_period,
                        cfg.time_constant,
                    )
                })
                .collect(),
            max_power: max_powers.to_vec(),
            idle_power: cfg.idle_power,
            budget_gen: 0,
        }
    }

    /// Creates metrics with a uniform maximum power (the paper's
    /// Section 6.1 setup: "we set the maximum power of all CPUs to
    /// 60 W").
    pub fn uniform(n_cpus: usize, max_power: Watts, cfg: PowerStateConfig) -> Self {
        PowerState::new(n_cpus, &vec![max_power; n_cpus], cfg)
    }

    /// Number of CPUs tracked.
    pub fn n_cpus(&self) -> usize {
        self.thermal.len()
    }

    /// Folds an estimated power sample (over `period` of wall time)
    /// into `cpu`'s thermal power.
    pub fn observe(&mut self, cpu: CpuId, power: Watts, period: SimDuration) -> Watts {
        self.thermal[cpu.0].update(power, period)
    }

    /// The thermal power of `cpu` — the scheduler's temperature proxy.
    pub fn thermal_power(&self, cpu: CpuId) -> Watts {
        self.thermal[cpu.0].watts()
    }

    /// The maximum power of `cpu`.
    pub fn max_power(&self, cpu: CpuId) -> Watts {
        self.max_power[cpu.0]
    }

    /// Replaces the maximum power of `cpu` (e.g. when an experiment
    /// lowers the budget at runtime).
    pub fn set_max_power(&mut self, cpu: CpuId, max: Watts) {
        assert!(max.is_sane(), "max power not sane");
        self.max_power[cpu.0] = max;
        self.budget_gen += 1;
    }

    /// Change counter of the per-CPU budgets; see
    /// [`GroupRatioCache`].
    pub fn budget_gen(&self) -> u64 {
        self.budget_gen
    }

    /// The power attributed to an idle CPU.
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// Thermal power ratio of `cpu` (Section 4.3).
    pub fn thermal_ratio(&self, cpu: CpuId) -> f64 {
        self.thermal_power(cpu).ratio(self.max_power(cpu))
    }

    /// Average thermal power ratio over a CPU group.
    pub fn group_thermal_ratio(&self, group: &CpuGroup) -> f64 {
        group
            .cpus()
            .iter()
            .map(|&c| self.thermal_ratio(c))
            .sum::<f64>()
            / group.len() as f64
    }

    /// Sum of the thermal powers of the given CPUs — the package-level
    /// quantity the SMT adaptations compare against the package budget
    /// (Section 4.7).
    pub fn thermal_power_sum(&self, cpus: &[CpuId]) -> Watts {
        cpus.iter().map(|&c| self.thermal_power(c)).sum()
    }

    /// Sum of the maximum powers of the given CPUs.
    pub fn max_power_sum(&self, cpus: &[CpuId]) -> Watts {
        cpus.iter().map(|&c| self.max_power(c)).sum()
    }
}

/// Runqueue power of `cpu` (Section 4.3): the average of the energy
/// profiles of every task associated with the queue, including the
/// running one. An empty queue reports the idle power.
///
/// O(1): the waiting tasks' profile sum is cached on the runqueue
/// (profiles only change while a task runs), so the balancer's
/// machine-wide group scans no longer walk every queue's tasks.
pub fn runqueue_power(sys: &System, cpu: CpuId, idle_power: Watts) -> Watts {
    let rq = sys.rq(cpu);
    let n = rq.nr_running();
    if n == 0 {
        return idle_power;
    }
    let mut total = rq.queued_profile();
    if let Some(current) = rq.current() {
        total += sys.task(current).profile().0;
    }
    Watts(total / n as f64)
}

/// Runqueue power ratio of `cpu`: runqueue power over maximum power.
pub fn runqueue_power_ratio(sys: &System, cpu: CpuId, power: &PowerState) -> f64 {
    runqueue_power(sys, cpu, power.idle_power()).ratio(power.max_power(cpu))
}

/// Average runqueue power ratio over a CPU group, by scanning its
/// CPUs (each read is O(1) via the queued-profile cache, but the scan
/// is O(group)). The energy balancer reads this through
/// [`GroupRatioCache`] instead, which amortises the scan away.
pub fn group_runqueue_ratio(sys: &System, group: &CpuGroup, power: &PowerState) -> f64 {
    group
        .cpus()
        .iter()
        .map(|&c| runqueue_power_ratio(sys, c, power))
        .sum::<f64>()
        / group.len() as f64
}

/// Memoised group runqueue-power ratios, keyed by the aggregate
/// tree's per-unit generation counters.
///
/// The per-CPU ratio is a nonlinear function (a ratio of sums divided
/// by a per-CPU budget), so group ratios cannot be folded into linear
/// running sums without changing their float rounding — and balancing
/// decisions must stay *bitwise identical* to the scan-based
/// implementation. Instead each unit's ratio sum is recomputed lazily,
/// by exactly the member-order scan [`group_runqueue_ratio`] performs,
/// and reused until the unit's generation (bumped by `ebs_sched` on
/// any membership or profile change, in O(depth)) moves. A balancing
/// pass over a quiescent domain therefore costs O(groups) instead of
/// O(CPUs), while yielding the same bits as a full rescan.
///
/// Budget changes ([`PowerState::set_max_power`]) shift every ratio,
/// so the whole cache also keys on [`PowerState::budget_gen`].
#[derive(Clone, Debug)]
pub struct GroupRatioCache {
    /// Cached `(unit_gen, ratio_sum)` per core / package / node.
    core: Vec<(u64, f64)>,
    package: Vec<(u64, f64)>,
    node: Vec<(u64, f64)>,
    budget_gen_seen: u64,
}

/// Sentinel forcing the first read of a slot to recompute (unit
/// generations start at 0 and only grow).
const STALE: u64 = u64::MAX;

impl GroupRatioCache {
    /// Creates an all-stale cache shaped like `topo`.
    pub fn new(topo: &Topology) -> Self {
        GroupRatioCache {
            core: vec![(STALE, 0.0); topo.n_cores()],
            package: vec![(STALE, 0.0); topo.n_packages()],
            node: vec![(STALE, 0.0); topo.n_nodes()],
            budget_gen_seen: 0,
        }
    }

    /// Average runqueue power ratio over a group — bitwise identical
    /// to [`group_runqueue_ratio`], amortised O(1) for unit-tagged
    /// groups.
    pub fn group_ratio(&mut self, sys: &System, group: &CpuGroup, power: &PowerState) -> f64 {
        if power.budget_gen() != self.budget_gen_seen {
            self.budget_gen_seen = power.budget_gen();
            for slot in self
                .core
                .iter_mut()
                .chain(self.package.iter_mut())
                .chain(self.node.iter_mut())
            {
                slot.0 = STALE;
            }
        }
        // Singleton groups (SMT siblings, one-CPU packages) skip the
        // cache: the direct read is already O(1), and `r / 1.0 == r`
        // keeps the bits identical to the scan.
        if let [only] = group.cpus() {
            return runqueue_power_ratio(sys, *only, power);
        }
        let slot = match group.unit() {
            Some(GroupUnit::Core(c)) => &mut self.core[c.0],
            Some(GroupUnit::Package(p)) => &mut self.package[p.0],
            Some(GroupUnit::Node(n)) => &mut self.node[n.0],
            // Untagged groups — and `Cpu`-tagged ones, singletons by
            // construction and so already handled above — take the
            // plain scan.
            Some(GroupUnit::Cpu(_)) | None => return group_runqueue_ratio(sys, group, power),
        };
        let gen = sys
            .group_gen(group)
            .expect("unit-tagged multi-CPU group has a generation");
        if slot.0 != gen {
            *slot = (
                gen,
                group
                    .cpus()
                    .iter()
                    .map(|&c| runqueue_power_ratio(sys, c, power))
                    .sum::<f64>(),
            );
        }
        slot.1 / group.len() as f64
    }
}

impl GroupRatioCache {
    /// Marks every slot stale, forcing the next read of each unit to
    /// recompute by the member-order scan. Because cached entries are
    /// bitwise identical to a fresh scan, dropping them is invisible
    /// to balancing decisions — which is why snapshots never carry the
    /// cache: a restored balancer starts all-stale.
    pub(crate) fn mark_all_stale(&mut self) {
        for slot in self
            .core
            .iter_mut()
            .chain(self.package.iter_mut())
            .chain(self.node.iter_mut())
        {
            slot.0 = STALE;
        }
        self.budget_gen_seen = 0;
    }
}

impl ebs_store::Snapshot for PowerState {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.seq(&self.thermal, |w, avg| avg.save(w));
        w.seq(&self.max_power, |w, &p| w.watts(p));
        w.u64(self.budget_gen);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let n = r.usize()?;
        if n != self.thermal.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "power state for {n} CPUs, expected {}",
                self.thermal.len()
            )));
        }
        for avg in &mut self.thermal {
            avg.restore(r)?;
        }
        let n = r.usize()?;
        if n != self.max_power.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "budget table for {n} CPUs, expected {}",
                self.max_power.len()
            )));
        }
        for p in &mut self.max_power {
            *p = r.watts()?;
        }
        self.budget_gen = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_sched::TaskConfig;
    use ebs_topology::Topology;

    fn cfg() -> PowerStateConfig {
        PowerStateConfig::default()
    }

    fn spawn_with_profile(sys: &mut System, cpu: CpuId, watts: f64) {
        let id = sys.spawn(
            TaskConfig {
                initial_profile: Watts(watts),
                ..TaskConfig::default()
            },
            cpu,
        );
        // Profiles start exactly at the configured initial value.
        assert_eq!(sys.task(id).profile(), Watts(watts));
    }

    #[test]
    fn thermal_power_starts_at_idle_and_rises_slowly() {
        let mut ps = PowerState::uniform(2, Watts(60.0), cfg());
        assert_eq!(ps.thermal_power(CpuId(0)), Watts(6.8));
        let after = ps.observe(CpuId(0), Watts(61.0), SimDuration::from_millis(100));
        // One timeslice against a 15 s time constant barely moves it.
        assert!(after > Watts(6.8));
        assert!(
            after < Watts(7.4),
            "thermal power moved too fast: {after:?}"
        );
        // CPU 1 untouched.
        assert_eq!(ps.thermal_power(CpuId(1)), Watts(6.8));
    }

    #[test]
    fn thermal_power_converges_to_sustained_load() {
        let mut ps = PowerState::uniform(1, Watts(60.0), cfg());
        for _ in 0..3_000 {
            ps.observe(CpuId(0), Watts(61.0), SimDuration::from_millis(100));
        }
        // 300 s >> 15 s time constant.
        assert!((ps.thermal_power(CpuId(0)).0 - 61.0).abs() < 0.01);
    }

    #[test]
    fn ratios_normalise_by_cpu_budget() {
        let mut ps = PowerState::new(2, &[Watts(60.0), Watts(40.0)], cfg());
        for _ in 0..3_000 {
            ps.observe(CpuId(0), Watts(30.0), SimDuration::from_millis(100));
            ps.observe(CpuId(1), Watts(30.0), SimDuration::from_millis(100));
        }
        // Same thermal power, different budgets, different ratios.
        assert!((ps.thermal_ratio(CpuId(0)) - 0.5).abs() < 0.01);
        assert!((ps.thermal_ratio(CpuId(1)) - 0.75).abs() < 0.01);
    }

    #[test]
    fn runqueue_power_averages_profiles() {
        let mut sys = System::new(Topology::xseries445(false));
        spawn_with_profile(&mut sys, CpuId(0), 61.0);
        spawn_with_profile(&mut sys, CpuId(0), 38.0);
        // Running tasks count too.
        sys.context_switch(CpuId(0));
        let p = runqueue_power(&sys, CpuId(0), Watts(6.8));
        assert!((p.0 - 49.5).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn empty_runqueue_reports_idle_power() {
        let sys = System::new(Topology::xseries445(false));
        assert_eq!(runqueue_power(&sys, CpuId(3), Watts(6.8)), Watts(6.8));
    }

    #[test]
    fn group_averages() {
        let mut sys = System::new(Topology::xseries445(false));
        let ps = PowerState::uniform(8, Watts(60.0), cfg());
        spawn_with_profile(&mut sys, CpuId(0), 60.0);
        spawn_with_profile(&mut sys, CpuId(1), 30.0);
        let domain = sys.topology().domains(CpuId(0))[0].clone();
        // Node-level group 0 contains only CPU 0.
        let g0 = &domain.groups()[0];
        assert!((group_runqueue_ratio(&sys, g0, &ps) - 1.0).abs() < 1e-9);
        let g1 = &domain.groups()[1];
        assert!((group_runqueue_ratio(&sys, g1, &ps) - 0.5).abs() < 1e-9);
        assert!(ps.group_thermal_ratio(g0) > 0.0);
    }

    #[test]
    fn package_sums_for_smt() {
        let mut ps = PowerState::uniform(4, Watts(20.0), cfg());
        for _ in 0..3_000 {
            ps.observe(CpuId(0), Watts(30.0), SimDuration::from_millis(100));
            ps.observe(CpuId(2), Watts(10.0), SimDuration::from_millis(100));
        }
        let sum = ps.thermal_power_sum(&[CpuId(0), CpuId(2)]);
        assert!((sum.0 - 40.0).abs() < 0.1);
        assert_eq!(ps.max_power_sum(&[CpuId(0), CpuId(2)]), Watts(40.0));
    }

    #[test]
    fn set_max_power_takes_effect() {
        let mut ps = PowerState::uniform(1, Watts(60.0), cfg());
        let gen = ps.budget_gen();
        ps.set_max_power(CpuId(0), Watts(40.0));
        assert_eq!(ps.max_power(CpuId(0)), Watts(40.0));
        assert!(ps.budget_gen() > gen, "budget change must bump the gen");
    }

    #[test]
    fn ratio_cache_matches_scans_and_tracks_changes() {
        let topo = Topology::build_cmp(2, 2, 2, 1); // 8 CPUs, 3 levels.
        let mut sys = System::new(topo.clone());
        let mut ps = PowerState::uniform(8, Watts(60.0), cfg());
        let mut cache = GroupRatioCache::new(&topo);
        for c in 0..8 {
            spawn_with_profile(&mut sys, CpuId(c), 20.0 + 5.0 * c as f64);
        }
        let check = |cache: &mut GroupRatioCache, sys: &System, ps: &PowerState| {
            for cpu in sys.topology().cpu_ids() {
                for domain in sys.topology().domains(cpu) {
                    for group in domain.groups() {
                        let fresh = group_runqueue_ratio(sys, group, ps);
                        let cached = cache.group_ratio(sys, group, ps);
                        assert_eq!(cached.to_bits(), fresh.to_bits(), "cache diverged");
                    }
                }
            }
        };
        check(&mut cache, &sys, &ps);
        // A migration invalidates exactly the touched units.
        let moved = sys.rq(CpuId(0)).iter_migration_candidates().next().unwrap();
        sys.migrate_queued(moved, CpuId(7), ebs_sched::MigrationReason::LoadBalance)
            .unwrap();
        check(&mut cache, &sys, &ps);
        // A budget change invalidates everything.
        ps.set_max_power(CpuId(3), Watts(45.0));
        check(&mut cache, &sys, &ps);
    }

    #[test]
    #[should_panic(expected = "one max power per CPU")]
    fn wrong_budget_count_rejected() {
        let _ = PowerState::new(3, &[Watts(60.0)], cfg());
    }
}
