//! Physical unit newtypes shared across the EBS workspace.
//!
//! The energy-aware scheduler of Merkel & Bellosa (EuroSys 2006) juggles
//! several physical quantities — energy estimates, power ratios,
//! temperatures, and simulated time. Mixing them up (e.g. comparing a
//! runqueue *power* to a *temperature*) is exactly the class of bug the
//! paper's Section 4.3 warns about when it insists that *thermal power*
//! keep "the dimension of a power". These newtypes make such confusion a
//! compile error while staying zero-cost.
//!
//! # Examples
//!
//! ```
//! use ebs_units::{Joules, SimDuration, Watts};
//!
//! let timeslice = SimDuration::from_millis(100);
//! let energy = Watts(55.0) * timeslice;
//! assert!((energy.0 - 5.5).abs() < 1e-9);
//! assert_eq!(energy / timeslice, Watts(55.0));
//! ```

mod freq;
mod power;
mod temp;
mod time;

pub use freq::{Hertz, Volts};
pub use power::{Joules, Watts};
pub use temp::Celsius;
pub use time::{SimDuration, SimTime};

/// Clock cycles executed by a CPU, used by the counter and IPC models.
pub type Cycles = u64;

/// Retired instructions, the work unit of simulated programs.
pub type Instructions = u64;
