//! Power and energy quantities.
//!
//! The paper's scheduling metrics are all powers (runqueue power, thermal
//! power, maximum power) or energies (per-timeslice consumption, counter
//! weights). Keeping them as distinct types documents every conversion:
//! energy is only obtained from power by multiplying with a duration, and
//! vice versa.

use crate::time::SimDuration;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Power in watts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Energy in joules.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// The energy dissipated at this power over `dt`.
    pub fn over(self, dt: SimDuration) -> Joules {
        Joules(self.0 * dt.as_secs_f64())
    }

    /// The dimensionless ratio `self / other`, e.g. a runqueue power
    /// divided by the CPU's maximum power (Section 4.3).
    ///
    /// Returns zero when `other` is zero so that an unconfigured CPU
    /// (no power budget) never looks attractive to the balancer.
    pub fn ratio(self, other: Watts) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }

    /// Clamps the power into `[lo, hi]`.
    pub fn clamp(self, lo: Watts, hi: Watts) -> Watts {
        Watts(self.0.clamp(lo.0, hi.0))
    }

    /// The larger of two powers.
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// The smaller of two powers.
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }

    /// Whether the value is finite and non-negative — a sanity predicate
    /// used by debug assertions throughout the workspace.
    pub fn is_sane(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Joules {
    /// Zero joules.
    pub const ZERO: Joules = Joules(0.0);

    /// The average power when this energy is spread over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn average_power(self, dt: SimDuration) -> Watts {
        assert!(!dt.is_zero(), "average power over an empty interval");
        Watts(self.0 / dt.as_secs_f64())
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl SubAssign for Watts {
    fn sub_assign(&mut self, rhs: Watts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Watts {
    type Output = Watts;
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Mul<SimDuration> for Watts {
    type Output = Joules;
    fn mul(self, rhs: SimDuration) -> Joules {
        self.over(rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<SimDuration> for Joules {
    type Output = Watts;
    fn div(self, rhs: SimDuration) -> Watts {
        self.average_power(rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl fmt::Debug for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}W", self.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}W", self.0)
    }
}

impl fmt::Debug for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}J", self.0)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        let e = Watts(50.0) * SimDuration::from_millis(100);
        assert!((e.0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_duration_is_power() {
        let p = Joules(5.0) / SimDuration::from_millis(100);
        assert!((p.0 - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn average_power_over_zero_panics() {
        let _ = Joules(1.0).average_power(SimDuration::ZERO);
    }

    #[test]
    fn ratio_handles_zero_budget() {
        assert_eq!(Watts(30.0).ratio(Watts(60.0)), 0.5);
        assert_eq!(Watts(30.0).ratio(Watts::ZERO), 0.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let w = Watts(40.0) + Watts(20.0) - Watts(10.0);
        assert_eq!(w, Watts(50.0));
        assert_eq!(w * 2.0, Watts(100.0));
        assert_eq!(w / 2.0, Watts(25.0));
        assert_eq!(-w, Watts(-50.0));
    }

    #[test]
    fn summation() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
        let e: Joules = [Joules(1.5), Joules(2.5)].into_iter().sum();
        assert_eq!(e, Joules(4.0));
    }

    #[test]
    fn sanity_predicate() {
        assert!(Watts(13.6).is_sane());
        assert!(!Watts(-1.0).is_sane());
        assert!(!Watts(f64::NAN).is_sane());
        assert!(!Watts(f64::INFINITY).is_sane());
    }

    #[test]
    fn clamp_min_max() {
        assert_eq!(Watts(70.0).clamp(Watts::ZERO, Watts(60.0)), Watts(60.0));
        assert_eq!(Watts(10.0).max(Watts(20.0)), Watts(20.0));
        assert_eq!(Watts(10.0).min(Watts(20.0)), Watts(10.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts(61.04)), "61.0W");
        assert_eq!(format!("{:?}", Watts(61.0449)), "61.045W");
        assert_eq!(format!("{}", Joules(1.2345)), "1.234J");
    }
}
