//! Temperature in degrees Celsius.
//!
//! The paper reports temperatures in Celsius (45 °C workload maximum,
//! 38 °C artificial throttling limit), so the workspace follows suit.
//! Only differences of temperature enter the RC model, which makes the
//! Celsius/Kelvin distinction immaterial as long as a single scale is
//! used consistently.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Temperature in degrees Celsius.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

impl Celsius {
    /// A typical machine-room ambient temperature.
    pub const AMBIENT: Celsius = Celsius(22.0);

    /// The difference `self - other` in kelvin.
    pub fn delta(self, other: Celsius) -> f64 {
        self.0 - other.0
    }

    /// The larger of two temperatures.
    pub fn max(self, other: Celsius) -> Celsius {
        Celsius(self.0.max(other.0))
    }

    /// The smaller of two temperatures.
    pub fn min(self, other: Celsius) -> Celsius {
        Celsius(self.0.min(other.0))
    }

    /// Whether the value is finite and above absolute zero.
    pub fn is_sane(self) -> bool {
        self.0.is_finite() && self.0 > -273.15
    }
}

impl Add<f64> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: f64) -> Celsius {
        Celsius(self.0 + rhs)
    }
}

impl AddAssign<f64> for Celsius {
    fn add_assign(&mut self, rhs: f64) {
        self.0 += rhs;
    }
}

impl Sub<f64> for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: f64) -> Celsius {
        Celsius(self.0 - rhs)
    }
}

impl SubAssign<f64> for Celsius {
    fn sub_assign(&mut self, rhs: f64) {
        self.0 -= rhs;
    }
}

impl fmt::Debug for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}degC", self.0)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}degC", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_signed() {
        assert_eq!(Celsius(38.0).delta(Celsius(22.0)), 16.0);
        assert_eq!(Celsius(22.0).delta(Celsius(38.0)), -16.0);
    }

    #[test]
    fn offset_arithmetic() {
        let mut t = Celsius(22.0) + 10.0;
        assert_eq!(t, Celsius(32.0));
        t -= 2.0;
        assert_eq!(t, Celsius(30.0));
        t += 1.0;
        assert_eq!(t, Celsius(31.0));
        assert_eq!(Celsius(31.0) - 1.0, Celsius(30.0));
    }

    #[test]
    fn min_max() {
        assert_eq!(Celsius(38.0).max(Celsius(45.0)), Celsius(45.0));
        assert_eq!(Celsius(38.0).min(Celsius(45.0)), Celsius(38.0));
    }

    #[test]
    fn sanity() {
        assert!(Celsius(22.0).is_sane());
        assert!(!Celsius(-300.0).is_sane());
        assert!(!Celsius(f64::NAN).is_sane());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Celsius(37.96)), "38.0degC");
    }
}
