//! Clock frequency and supply voltage quantities.
//!
//! Dynamic voltage/frequency scaling adds two more physical dimensions
//! to the scheduler's vocabulary: the core clock (`Hertz`) and the
//! supply voltage (`Volts`). CMOS dynamic power scales roughly with
//! `V² · f`, and instruction throughput with `f`, so keeping both as
//! distinct types documents every P-state computation the same way
//! [`crate::Watts`] documents the balancing metrics.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

/// Clock frequency in hertz.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(pub f64);

/// Supply voltage in volts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(pub f64);

impl Hertz {
    /// Zero hertz.
    pub const ZERO: Hertz = Hertz(0.0);

    /// Creates a frequency from gigahertz.
    pub const fn from_ghz(ghz: f64) -> Hertz {
        Hertz(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }

    /// The frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// The dimensionless ratio `self / other`, e.g. a scaled clock over
    /// the nominal clock. Returns zero when `other` is zero.
    pub fn ratio(self, other: Hertz) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }

    /// The larger of two frequencies.
    pub fn max(self, other: Hertz) -> Hertz {
        Hertz(self.0.max(other.0))
    }

    /// The smaller of two frequencies.
    pub fn min(self, other: Hertz) -> Hertz {
        Hertz(self.0.min(other.0))
    }

    /// Whether the value is finite and non-negative.
    pub fn is_sane(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Volts {
    /// Zero volts.
    pub const ZERO: Volts = Volts(0.0);

    /// The dimensionless ratio `self / other`, e.g. a P-state voltage
    /// over the nominal voltage. Returns zero when `other` is zero.
    pub fn ratio(self, other: Volts) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }

    /// The squared ratio `(self / other)²` — the factor by which CMOS
    /// dynamic energy per switching event scales with supply voltage.
    pub fn ratio_squared(self, other: Volts) -> f64 {
        let r = self.ratio(other);
        r * r
    }

    /// Whether the value is finite and non-negative.
    pub fn is_sane(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for Hertz {
    type Output = Hertz;
    fn add(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 + rhs.0)
    }
}

impl Sub for Hertz {
    type Output = Hertz;
    fn sub(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 - rhs.0)
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

impl Div<f64> for Hertz {
    type Output = Hertz;
    fn div(self, rhs: f64) -> Hertz {
        Hertz(self.0 / rhs)
    }
}

impl fmt::Debug for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}GHz", self.as_ghz())
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GHz", self.as_ghz())
    }
}

impl fmt::Debug for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}V", self.0)
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Hertz::from_ghz(2.2), Hertz(2.2e9));
        assert_eq!(Hertz::from_mhz(2200.0), Hertz::from_ghz(2.2));
        assert!((Hertz(1.8e9).as_ghz() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero() {
        assert!((Hertz::from_ghz(1.1).ratio(Hertz::from_ghz(2.2)) - 0.5).abs() < 1e-12);
        assert_eq!(Hertz::from_ghz(1.0).ratio(Hertz::ZERO), 0.0);
        assert!((Volts(1.2).ratio(Volts(1.5)) - 0.8).abs() < 1e-12);
        assert_eq!(Volts(1.0).ratio(Volts::ZERO), 0.0);
    }

    #[test]
    fn voltage_ratio_squared_is_the_energy_factor() {
        let f = Volts(1.2).ratio_squared(Volts(1.5));
        assert!((f - 0.64).abs() < 1e-12);
        assert_eq!(Volts(1.5).ratio_squared(Volts(1.5)), 1.0);
    }

    #[test]
    fn arithmetic() {
        let f = Hertz::from_ghz(2.0) + Hertz::from_ghz(0.2) - Hertz::from_ghz(0.4);
        assert!((f.as_ghz() - 1.8).abs() < 1e-12);
        assert_eq!(Hertz::from_ghz(1.0) * 2.0, Hertz::from_ghz(2.0));
        assert_eq!(Hertz::from_ghz(2.0) / 2.0, Hertz::from_ghz(1.0));
    }

    #[test]
    fn ordering_and_clamping() {
        assert!(Hertz::from_ghz(1.2) < Hertz::from_ghz(2.2));
        assert_eq!(
            Hertz::from_ghz(1.2).max(Hertz::from_ghz(2.2)),
            Hertz::from_ghz(2.2)
        );
        assert_eq!(
            Hertz::from_ghz(1.2).min(Hertz::from_ghz(2.2)),
            Hertz::from_ghz(1.2)
        );
    }

    #[test]
    fn sanity_predicates() {
        assert!(Hertz::from_ghz(2.2).is_sane());
        assert!(!Hertz(-1.0).is_sane());
        assert!(!Hertz(f64::NAN).is_sane());
        assert!(Volts(1.5).is_sane());
        assert!(!Volts(f64::INFINITY).is_sane());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Hertz::from_ghz(2.2)), "2.20GHz");
        assert_eq!(format!("{:?}", Hertz::from_ghz(1.867)), "1.867GHz");
        assert_eq!(format!("{}", Volts(1.475)), "1.48V");
    }
}
