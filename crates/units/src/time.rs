//! Simulated time: absolute instants and durations with microsecond
//! resolution.
//!
//! The simulator advances in fixed ticks (1 ms by default), but the
//! variable-period exponential average of the paper's Eq. 2 must handle
//! *arbitrary* execution intervals (a task "may block any time"), so
//! durations are kept at microsecond granularity.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant of simulated time, microseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ratio `self / other` as a float.
    ///
    /// This is the exponent used by the variable-period exponential
    /// average (Eq. 2 extension): the sampling period divided by the
    /// standard timeslice.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "division of SimDuration by zero");
        self.0 as f64 / other.0 as f64
    }

    /// Scales the duration by a non-negative float, rounding to the
    /// nearest microsecond and saturating at the representable maximum.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale");
        let scaled = (self.0 as f64 * factor).round();
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(SimDuration::from_millis(5), SimDuration::from_micros(5_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_micros(2_000_000)
        );
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(t - SimDuration::from_millis(15), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn ratio_of_durations() {
        let half = SimDuration::from_millis(50);
        let full = SimDuration::from_millis(100);
        assert!((half.ratio(full) - 0.5).abs() < 1e-12);
        assert!((full.ratio(half) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "division of SimDuration by zero")]
    fn ratio_by_zero_panics() {
        let _ = SimDuration::from_millis(1).ratio(SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2)); // 1.5 rounds to 2.
        assert_eq!(d.mul_f64(1e30), SimDuration::from_micros(u64::MAX));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_millis(25) % SimDuration::from_millis(10),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn display_picks_sensible_scale() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
