//! Property-based tests for the unit newtypes.

use ebs_units::{Joules, SimDuration, SimTime, Watts};
use proptest::prelude::*;

proptest! {
    /// Power -> energy -> power round-trips exactly (up to float
    /// rounding) for any positive duration.
    #[test]
    fn power_energy_round_trip(watts in 0.0f64..1_000.0, us in 1u64..10_000_000_000) {
        let dt = SimDuration::from_micros(us);
        let e = Watts(watts) * dt;
        let p = e / dt;
        prop_assert!((p.0 - watts).abs() < 1e-9 * watts.max(1.0));
    }

    /// Instant/duration arithmetic is consistent: `(t + d) - t == d`
    /// and `(t + d) - d == t`.
    #[test]
    fn instant_arithmetic_round_trips(t_us in 0u64..1_000_000_000, d_us in 0u64..1_000_000_000) {
        let t = SimTime::from_micros(t_us);
        let d = SimDuration::from_micros(d_us);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    /// Duration ratios and scalar multiplication agree.
    #[test]
    fn duration_ratio_inverts_scaling(us in 1u64..1_000_000, k in 1u64..1_000) {
        let d = SimDuration::from_micros(us);
        let scaled = d * k;
        prop_assert!((scaled.ratio(d) - k as f64).abs() < 1e-9);
        prop_assert_eq!(scaled / k, d);
    }

    /// Summing watts over an iterator equals fold-addition.
    #[test]
    fn watt_sum_is_fold(values in prop::collection::vec(0.0f64..100.0, 0..20)) {
        let sum: Watts = values.iter().map(|&v| Watts(v)).sum();
        let fold = values.iter().fold(Watts::ZERO, |acc, &v| acc + Watts(v));
        prop_assert!((sum.0 - fold.0).abs() < 1e-9);
        let jsum: Joules = values.iter().map(|&v| Joules(v)).sum();
        prop_assert!((jsum.0 - values.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// `mul_f64` scales monotonically and never panics on large
    /// factors (saturation).
    #[test]
    fn duration_mul_f64_is_monotone(us in 0u64..1_000_000, a in 0.0f64..10.0, b in 0.0f64..10.0) {
        let d = SimDuration::from_micros(us);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.mul_f64(lo) <= d.mul_f64(hi));
        let _ = d.mul_f64(f64::MAX); // Must saturate, not panic.
    }
}
