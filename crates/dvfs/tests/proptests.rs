//! Property-based tests: governor invariants over arbitrary tables,
//! domain states, and observations.

use ebs_dvfs::{
    Fixed, FrequencyDomain, Governor, GovernorInput, GovernorKind, OnDemand, PState, PStateTable,
    ThermalAware,
};
use ebs_units::{Hertz, SimDuration, Volts, Watts};
use proptest::prelude::*;

/// A strategy for valid P-state tables: strictly decreasing
/// frequencies, non-increasing voltages, 1..=8 states.
fn table_strategy() -> impl Strategy<Value = PStateTable> {
    (
        prop::collection::vec((0.02f64..0.12, 0.0f64..0.08), 0..7),
        1.0f64..3.5,
        0.9f64..1.6,
    )
        .prop_map(|(steps, top_ghz, top_volts)| {
            let mut states = vec![PState::new(Hertz::from_ghz(top_ghz), Volts(top_volts))];
            let (mut f, mut v) = (top_ghz, top_volts);
            for (df, dv) in steps {
                f -= df;
                v -= dv;
                states.push(PState::new(Hertz::from_ghz(f), Volts(v)));
            }
            PStateTable::new(states)
        })
}

fn input_strategy() -> impl Strategy<Value = GovernorInput> {
    (5.0f64..120.0, 10.0f64..80.0, 1.0f64..20.0, 0.0f64..=1.0).prop_map(
        |(thermal, budget, idle, utilization)| GovernorInput {
            thermal_power: Watts(thermal),
            budget: Watts(budget),
            idle_floor: Watts(idle),
            utilization,
        },
    )
}

fn governor_strategy() -> impl Strategy<Value = GovernorKind> {
    prop_oneof![
        (0usize..10).prop_map(GovernorKind::Fixed),
        Just(GovernorKind::OnDemand),
        Just(GovernorKind::ThermalAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every governor, on every table, from every domain state,
    /// returns a P-state index within the table bounds.
    #[test]
    fn governors_stay_within_table_bounds(
        table in table_strategy(),
        kind in governor_strategy(),
        start in 0usize..8,
        inputs in prop::collection::vec(input_strategy(), 1..20),
    ) {
        let mut domain = FrequencyDomain::new(table);
        domain.set_state(start.min(domain.table().slowest_index()));
        let mut governor = kind.build();
        for input in inputs {
            let next = governor.decide(&input, &domain);
            prop_assert!(
                next < domain.table().len(),
                "{} returned {next} for a {}-state table",
                governor.name(),
                domain.table().len()
            );
            domain.set_state(next);
            domain.advance(SimDuration::from_millis(10));
        }
    }

    /// ThermalAware is monotone in thermal power: more heat never
    /// selects a faster clock (all other inputs and the domain state
    /// held fixed).
    #[test]
    fn thermal_aware_is_monotone_in_thermal_power(
        table in table_strategy(),
        state in 0usize..8,
        budget in 20.0f64..70.0,
        idle in 1.0f64..15.0,
        a in 0.0f64..120.0,
        b in 0.0f64..120.0,
    ) {
        let mut domain = FrequencyDomain::new(table);
        domain.set_state(state.min(domain.table().slowest_index()));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mk = |thermal: f64| GovernorInput {
            thermal_power: Watts(thermal),
            budget: Watts(budget),
            idle_floor: Watts(idle),
            utilization: 1.0,
        };
        let mut governor = ThermalAware::default();
        let cool = governor.decide(&mk(lo), &domain);
        let warm = governor.decide(&mk(hi), &domain);
        let f_cool = domain.table().get(cool).frequency;
        let f_warm = domain.table().get(warm).frequency;
        prop_assert!(
            f_warm <= f_cool,
            "thermal power {lo} -> {f_cool:?} but {hi} -> {f_warm:?}"
        );
    }

    /// ThermalAware's choice always projects within the engagement
    /// target, or is the slowest state when nothing fits.
    #[test]
    fn thermal_aware_projection_fits_the_target(
        table in table_strategy(),
        state in 0usize..8,
        input in input_strategy(),
    ) {
        let mut domain = FrequencyDomain::new(table);
        domain.set_state(state.min(domain.table().slowest_index()));
        let mut governor = ThermalAware::default();
        let next = governor.decide(&input, &domain);
        let nominal_power = input.thermal_power.0 / domain.power_factor();
        let projected = nominal_power * domain.table().power_factor(next);
        let target = input.budget.0 * 0.95;
        prop_assert!(
            projected <= target + 1e-9 || next == domain.table().slowest_index(),
            "state {next} projects {projected:.2} W against target {target:.2} W"
        );
    }

    /// OnDemand always picks the slowest state that still serves the
    /// observed load, from any starting state — no trapping.
    #[test]
    fn ondemand_serves_the_load(
        table in table_strategy(),
        start in 0usize..8,
        utilizations in prop::collection::vec(0.0f64..=1.0, 1..30),
    ) {
        let mut domain = FrequencyDomain::new(table);
        domain.set_state(start.min(domain.table().slowest_index()));
        let mut governor = OnDemand::default();
        for u in utilizations {
            let input = GovernorInput {
                thermal_power: Watts(30.0),
                budget: Watts(60.0),
                idle_floor: Watts(13.6),
                utilization: u,
            };
            let next = governor.decide(&input, &domain);
            prop_assert!(next < domain.table().len());
            // Fast enough for the load...
            let required = (u / 0.8).min(1.0);
            prop_assert!(
                domain.table().speed_factor(next) + 1e-12 >= required,
                "state {next} too slow for utilization {u}"
            );
            // ...and the slowest such state (any slower one would not
            // serve it).
            if next < domain.table().slowest_index() {
                prop_assert!(domain.table().speed_factor(next + 1) < required);
            }
            domain.set_state(next);
        }
    }

    /// Fixed never leaves its (clamped) state.
    #[test]
    fn fixed_is_fixed(
        table in table_strategy(),
        pin in 0usize..12,
        inputs in prop::collection::vec(input_strategy(), 1..10),
    ) {
        let domain = FrequencyDomain::new(table);
        let mut governor = Fixed(pin);
        let expected = pin.min(domain.table().slowest_index());
        for input in inputs {
            prop_assert_eq!(governor.decide(&input, &domain), expected);
        }
    }

    /// Residency bookkeeping: per-state times always sum to the
    /// observed total and fractions to one.
    #[test]
    fn residency_sums_to_observed(
        table in table_strategy(),
        steps in prop::collection::vec((0usize..8, 1u64..500), 1..40),
    ) {
        let mut domain = FrequencyDomain::new(table);
        let mut total = SimDuration::ZERO;
        for (state, ms) in steps {
            domain.set_state(state.min(domain.table().slowest_index()));
            let dt = SimDuration::from_millis(ms);
            domain.advance(dt);
            total += dt;
        }
        prop_assert_eq!(domain.observed(), total);
        let residency = domain.residency();
        let sum: SimDuration = residency.iter().map(|r| r.time).sum();
        prop_assert_eq!(sum, total);
        let fractions: f64 = residency.iter().map(|r| r.fraction).sum();
        prop_assert!((fractions - 1.0).abs() < 1e-9);
    }
}
