//! P-states: the discrete frequency/voltage operating points.

use ebs_units::{Hertz, Volts};

/// One operating point: a clock frequency and the supply voltage the
/// part needs to sustain it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PState {
    /// Core clock.
    pub frequency: Hertz,
    /// Supply voltage.
    pub voltage: Volts,
}

impl PState {
    /// Creates a P-state.
    ///
    /// # Panics
    ///
    /// Panics if frequency or voltage is not positive and finite.
    pub fn new(frequency: Hertz, voltage: Volts) -> Self {
        assert!(
            frequency.is_sane() && frequency.0 > 0.0,
            "P-state frequency {frequency:?} must be positive"
        );
        assert!(
            voltage.is_sane() && voltage.0 > 0.0,
            "P-state voltage {voltage:?} must be positive"
        );
        PState { frequency, voltage }
    }

    /// Instruction-throughput factor relative to `nominal`: `f / f₀`.
    pub fn speed_factor(&self, nominal: &PState) -> f64 {
        self.frequency.ratio(nominal.frequency)
    }

    /// Dynamic-power factor relative to `nominal`: `(V/V₀)² · f/f₀`.
    ///
    /// CMOS dynamic power is `α · C · V² · f`; activity `α` and
    /// capacitance `C` are properties of the workload and the die, so
    /// between P-states only `V² · f` moves.
    pub fn power_factor(&self, nominal: &PState) -> f64 {
        self.voltage.ratio_squared(nominal.voltage) * self.speed_factor(nominal)
    }

    /// Energy per unit of work relative to `nominal`: `(V/V₀)²`.
    ///
    /// Work done scales with `f` and power with `V²·f`, so the energy
    /// for a fixed amount of work scales with `V²` alone — the reason
    /// DVFS saves energy where `hlt` merely defers work.
    pub fn energy_per_work_factor(&self, nominal: &PState) -> f64 {
        self.voltage.ratio_squared(nominal.voltage)
    }
}

/// An ordered table of P-states, fastest first (index 0 = P0, the
/// nominal state), mirroring the ACPI convention.
#[derive(Clone, Debug, PartialEq)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// Creates a table from states sorted fastest-first.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, frequencies are not strictly
    /// decreasing, or voltages are not non-increasing.
    pub fn new(states: Vec<PState>) -> Self {
        assert!(!states.is_empty(), "P-state table needs at least one state");
        for pair in states.windows(2) {
            assert!(
                pair[1].frequency < pair[0].frequency,
                "P-state frequencies must strictly decrease: {:?} then {:?}",
                pair[0].frequency,
                pair[1].frequency
            );
            assert!(
                pair[1].voltage <= pair[0].voltage,
                "P-state voltages must not increase as frequency drops"
            );
        }
        PStateTable { states }
    }

    /// The scaling ladder of the simulated 2.2 GHz Pentium 4 Xeon.
    ///
    /// The real Gallatin-era Xeon exposed only coarse clock modulation;
    /// this table is the SpeedStep-style ladder such a part would
    /// plausibly have had, with ~0.05 V of supply headroom per 200 MHz
    /// bin — enough spread that the slowest state cuts dynamic power to
    /// ~38 % of nominal.
    pub fn p4_xeon() -> Self {
        PStateTable::new(vec![
            PState::new(Hertz::from_ghz(2.2), Volts(1.50)),
            PState::new(Hertz::from_ghz(2.0), Volts(1.45)),
            PState::new(Hertz::from_ghz(1.8), Volts(1.40)),
            PState::new(Hertz::from_ghz(1.6), Volts(1.35)),
            PState::new(Hertz::from_ghz(1.4), Volts(1.30)),
            PState::new(Hertz::from_ghz(1.2), Volts(1.25)),
        ])
    }

    /// The scaling ladder of a hypothetical efficiency core paired
    /// with the [`PStateTable::p4_xeon`] performance ladder on hybrid
    /// shapes: a shorter, lower ladder (1.6 → 0.8 GHz) running at
    /// markedly lower voltages, so its whole operating range sits
    /// below the performance class's energy-per-work curve.
    pub fn efficiency_core() -> Self {
        PStateTable::new(vec![
            PState::new(Hertz::from_ghz(1.6), Volts(1.10)),
            PState::new(Hertz::from_ghz(1.4), Volts(1.05)),
            PState::new(Hertz::from_ghz(1.2), Volts(1.00)),
            PState::new(Hertz::from_ghz(1.0), Volts(0.95)),
            PState::new(Hertz::from_ghz(0.8), Volts(0.90)),
        ])
    }

    /// A degenerate single-state table pinning the part at `frequency`
    /// — what a machine without DVFS support looks like to the engine.
    pub fn nominal_only(frequency: Hertz, voltage: Volts) -> Self {
        PStateTable::new(vec![PState::new(frequency, voltage)])
    }

    /// Number of states.
    #[allow(clippy::len_without_is_empty)] // Construction rejects empty tables.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// The state at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> &PState {
        &self.states[index]
    }

    /// The nominal (fastest) state, P0.
    pub fn nominal(&self) -> &PState {
        &self.states[0]
    }

    /// The slowest state.
    pub fn slowest(&self) -> &PState {
        self.states.last().expect("table is never empty")
    }

    /// Index of the slowest state.
    pub fn slowest_index(&self) -> usize {
        self.states.len() - 1
    }

    /// Iterates the states, fastest first.
    pub fn iter(&self) -> impl Iterator<Item = &PState> {
        self.states.iter()
    }

    /// Dynamic-power factor of state `index` relative to nominal.
    pub fn power_factor(&self, index: usize) -> f64 {
        self.states[index].power_factor(self.nominal())
    }

    /// Speed factor of state `index` relative to nominal.
    pub fn speed_factor(&self, index: usize) -> f64 {
        self.states[index].speed_factor(self.nominal())
    }

    /// The fastest state whose dynamic-power factor does not exceed
    /// `budget_factor`; the slowest state if none fits.
    pub fn highest_within(&self, budget_factor: f64) -> usize {
        (0..self.states.len())
            .find(|&i| self.power_factor(i) <= budget_factor)
            .unwrap_or(self.slowest_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_table_shape() {
        let t = PStateTable::p4_xeon();
        assert_eq!(t.len(), 6);
        assert_eq!(t.nominal().frequency, Hertz::from_ghz(2.2));
        assert_eq!(t.slowest().frequency, Hertz::from_ghz(1.2));
        assert_eq!(t.slowest_index(), 5);
    }

    #[test]
    fn factors_decrease_along_the_table() {
        let t = PStateTable::p4_xeon();
        assert_eq!(t.speed_factor(0), 1.0);
        assert_eq!(t.power_factor(0), 1.0);
        for i in 1..t.len() {
            assert!(t.speed_factor(i) < t.speed_factor(i - 1));
            assert!(t.power_factor(i) < t.power_factor(i - 1));
            // Voltage scaling makes power drop faster than speed.
            assert!(t.power_factor(i) < t.speed_factor(i));
        }
        // The slowest state cuts dynamic power to ~38 % of nominal.
        assert!((t.power_factor(5) - (1.25f64 / 1.5).powi(2) * (1.2 / 2.2)).abs() < 1e-12);
    }

    #[test]
    fn energy_per_work_follows_voltage_squared() {
        let t = PStateTable::p4_xeon();
        let slow = t.slowest().energy_per_work_factor(t.nominal());
        assert!((slow - (1.25f64 / 1.5).powi(2)).abs() < 1e-12);
        assert!(slow < 1.0, "slower states must be more efficient per work");
    }

    #[test]
    fn highest_within_picks_the_fastest_fitting_state() {
        let t = PStateTable::p4_xeon();
        assert_eq!(t.highest_within(1.0), 0);
        // Budget factor just under P1's power factor lands on P2.
        let p1 = t.power_factor(1);
        assert_eq!(t.highest_within(p1), 1);
        assert_eq!(t.highest_within(p1 - 1e-9), 2);
        // Impossible budgets fall back to the slowest state.
        assert_eq!(t.highest_within(0.0), t.slowest_index());
        assert_eq!(t.highest_within(-1.0), t.slowest_index());
    }

    #[test]
    fn efficiency_table_sits_below_the_p4_ladder() {
        let e = PStateTable::efficiency_core();
        let p = PStateTable::p4_xeon();
        assert_eq!(e.len(), 5);
        assert!(e.nominal().frequency < p.slowest().frequency * 2.0);
        assert!(e.nominal().voltage < p.slowest().voltage);
        // Monotone factors hold for the new ladder too.
        for i in 1..e.len() {
            assert!(e.speed_factor(i) < e.speed_factor(i - 1));
            assert!(e.power_factor(i) < e.power_factor(i - 1));
        }
    }

    #[test]
    fn nominal_only_is_a_single_pinned_state() {
        let t = PStateTable::nominal_only(Hertz::from_ghz(2.2), Volts(1.5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.highest_within(0.0), 0);
        assert_eq!(t.power_factor(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn unsorted_table_rejected() {
        let _ = PStateTable::new(vec![
            PState::new(Hertz::from_ghz(1.2), Volts(1.25)),
            PState::new(Hertz::from_ghz(2.2), Volts(1.50)),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_table_rejected() {
        let _ = PStateTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = PState::new(Hertz::ZERO, Volts(1.0));
    }
}
