//! Frequency governors: the policies choosing the next P-state.

use crate::domain::FrequencyDomain;
use ebs_units::{SimDuration, Watts};

/// The per-domain observations a governor decides from, assembled by
/// the simulation engine for each frequency domain it owns (one per
/// package under [`crate::DomainScope::PerPackage`], one per core
/// under [`crate::DomainScope::PerCore`]).
#[derive(Clone, Copy, Debug)]
pub struct GovernorInput {
    /// The domain's thermal power — the sum of its hardware threads'
    /// exponential power averages (the same signal the `hlt` throttle
    /// compares against the budget).
    pub thermal_power: Watts,
    /// The domain's power budget (the summed maximum power of its
    /// hardware threads).
    pub budget: Watts,
    /// The domain's power at zero activity (halt power): the floor no
    /// amount of frequency scaling goes below.
    pub idle_floor: Watts,
    /// Fraction of the domain's hardware threads that were busy over
    /// the last interval, in `[0, 1]`.
    pub utilization: f64,
}

/// The re-decision triggers a governor reports alongside a decision:
/// the bands of the observed signals within which its latest answer is
/// guaranteed to stand. An event-driven engine re-runs [`Governor::
/// decide`] only when a signal leaves its band (or a configured hold
/// horizon expires) instead of on a fixed cadence — a package whose
/// utilization and thermal power sit comfortably inside their bands
/// needs no governor wake-ups at all.
///
/// Band semantics: the answer is unchanged while each reported signal
/// stays *strictly inside* its closed band. Exactly on an edge the
/// engine may re-decide spuriously (harmless: the answer is recomputed
/// and the state only changes if it differs) or hold one extra
/// evaluation; both resolve as soon as the signal moves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecisionHold {
    /// The answer holds while the windowed package utilization stays in
    /// `[lo, hi]`; `None` means utilization cannot change it.
    pub utilization: Option<(f64, f64)>,
    /// The answer holds while the package thermal power stays in
    /// `[lo, hi]`; `None` means thermal power cannot change it.
    pub thermal_power: Option<(Watts, Watts)>,
    /// Minimum spacing to the *next* band-escape re-decision: the
    /// engine suppresses escape triggers for this long after the
    /// decision (deadline-forced decisions are unaffected). Zero — the
    /// default everywhere except [`ThermalAware`]'s descending steps —
    /// re-decides as soon as a signal leaves its band. A governor
    /// whose band edge coincides with the signal's settling point
    /// (e.g. thermal enforcement steering *to* the band edge) uses
    /// this to turn per-tick decision bursts into one decision per
    /// dwell.
    pub min_dwell: SimDuration,
}

impl DecisionHold {
    /// A hold that never expires: no observable signal changes the
    /// governor's answer (e.g. [`Fixed`], or a single-state table).
    pub const fn never() -> Self {
        DecisionHold {
            utilization: None,
            thermal_power: None,
            min_dwell: SimDuration::ZERO,
        }
    }

    /// Whether any drift in `utilization` or `thermal_power` away from
    /// the given values escapes this hold.
    pub fn is_escaped(&self, utilization: f64, thermal_power: Watts) -> bool {
        if let Some((lo, hi)) = self.utilization {
            if utilization < lo || utilization > hi {
                return true;
            }
        }
        if let Some((lo, hi)) = self.thermal_power {
            if thermal_power < lo || thermal_power > hi {
                return true;
            }
        }
        false
    }

    /// Whether an escape observed during the dwell is the
    /// *stale-average artifact* the dwell exists to suppress: the
    /// thermal power sits above the band's upper edge but has not
    /// risen past `armed_power`, the value the decision was made from.
    /// The decision already accounted for that much power — the reading
    /// is the lagging average still settling toward the state just
    /// chosen, not new information. A power that climbs *above* the
    /// armed level (the workload genuinely grew), or any escape on the
    /// utilization band or below the thermal band's lower edge
    /// (recovery), is genuine and must be acted on immediately.
    pub fn stale_descent(&self, thermal_power: Watts, armed_power: Watts) -> bool {
        match self.thermal_power {
            Some((_, hi)) => thermal_power > hi && thermal_power <= armed_power,
            None => false,
        }
    }
}

/// A frequency-selection policy for one [`FrequencyDomain`].
pub trait Governor {
    /// Chooses the P-state index for the next interval. Must return an
    /// index within the domain's table.
    fn decide(&mut self, input: &GovernorInput, domain: &FrequencyDomain) -> usize;

    /// Reports the conditions under which the answer `chosen`, just
    /// returned by [`Governor::decide`] for `input`, could change.
    /// Called *before* the engine switches the domain to `chosen`;
    /// thermal-power bands must be expressed for the post-switch state
    /// (its power factor is `domain.table().power_factor(chosen)`).
    ///
    /// The default is maximally conservative — zero-width bands around
    /// the observed signals, so any drift re-decides — which is always
    /// correct, merely event-free in name only.
    fn hold(&self, input: &GovernorInput, domain: &FrequencyDomain, chosen: usize) -> DecisionHold {
        let _ = (domain, chosen);
        DecisionHold {
            utilization: Some((input.utilization, input.utilization)),
            thermal_power: Some((input.thermal_power, input.thermal_power)),
            min_dwell: SimDuration::ZERO,
        }
    }

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Pins the domain at one P-state (the paper's fixed-clock baseline,
/// or a fixed low-power mode).
#[derive(Clone, Copy, Debug)]
pub struct Fixed(pub usize);

impl Governor for Fixed {
    fn decide(&mut self, _input: &GovernorInput, domain: &FrequencyDomain) -> usize {
        self.0.min(domain.table().slowest_index())
    }

    /// A pinned clock never re-decides: the answer ignores every input.
    fn hold(
        &self,
        _input: &GovernorInput,
        _domain: &FrequencyDomain,
        _chosen: usize,
    ) -> DecisionHold {
        DecisionHold::never()
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// The classic utilization-driven governor, after Linux's `ondemand`:
/// jump to nominal when the package is busy beyond the up-threshold,
/// otherwise pick the slowest state still fast enough to serve the
/// observed load (`f/f₀ ≥ utilization / up_threshold`).
///
/// Picking proportionally — instead of stepping down and holding —
/// means the governor can ramp back *up* from any state: a package
/// with one busy SMT sibling (utilization 0.5) settles at the state
/// serving half-load, rather than staying trapped wherever an earlier
/// idle period left it.
#[derive(Clone, Copy, Debug)]
pub struct OnDemand {
    /// Utilization at or above which the governor jumps to P0.
    pub up_threshold: f64,
}

impl Default for OnDemand {
    fn default() -> Self {
        OnDemand { up_threshold: 0.8 }
    }
}

impl Governor for OnDemand {
    fn decide(&mut self, input: &GovernorInput, domain: &FrequencyDomain) -> usize {
        if input.utilization >= self.up_threshold {
            return 0;
        }
        let required = input.utilization / self.up_threshold;
        let table = domain.table();
        // Slowest state still fast enough; P0 (speed factor 1) always
        // qualifies, so the search cannot fail.
        (0..table.len())
            .rev()
            .find(|&i| table.speed_factor(i) >= required)
            .unwrap_or(0)
    }

    /// The answer is a pure function of utilization: state `i` is
    /// chosen exactly while `u / up_threshold` lies in
    /// `(speed_factor(i+1), speed_factor(i)]` (with `u ≥ up_threshold`
    /// collapsing to P0), so the hold band is that interval scaled by
    /// the threshold. Thermal power never enters the decision.
    fn hold(
        &self,
        _input: &GovernorInput,
        domain: &FrequencyDomain,
        chosen: usize,
    ) -> DecisionHold {
        let table = domain.table();
        if table.len() == 1 {
            return DecisionHold::never();
        }
        let hi = if chosen == 0 {
            f64::INFINITY
        } else {
            self.up_threshold * table.speed_factor(chosen)
        };
        let lo = if chosen == table.slowest_index() {
            f64::NEG_INFINITY
        } else {
            self.up_threshold * table.speed_factor(chosen + 1)
        };
        DecisionHold {
            utilization: Some((lo, hi)),
            thermal_power: None,
            min_dwell: SimDuration::ZERO,
        }
    }

    fn name(&self) -> &'static str {
        "ondemand"
    }
}

/// Thermal enforcement by scaling instead of halting.
///
/// Projects what the package's thermal power would become at every
/// P-state and picks the fastest one whose projection stays below
/// `engage · budget`. Counter-visible power — static cycle cost
/// included — scales with `V² · f`, so the projection normalises the
/// observed thermal power back to the nominal state through the
/// current state's power factor and rescales it with each candidate's.
/// (Time spent halted does not scale; ignoring that only makes the
/// projection conservative, since halt power is far below any running
/// power.) Engaging at a margin *below* the budget (default 95 %)
/// means the `hlt` limit is never reached: the clock has already come
/// down by the time the bang-bang controller would have tripped.
#[derive(Clone, Copy, Debug)]
pub struct ThermalAware {
    /// Fraction of the budget the governor steers to, in `(0, 1]`.
    pub engage: f64,
    /// Minimum re-decision spacing while *descending* the ladder.
    ///
    /// The decision input is a lagging average (~15 s time constant),
    /// so right after a downclock the observed power is still the
    /// *old* state's — above the new hold band's upper edge — even
    /// though the instantaneous power already complies. Without a
    /// dwell, the escape trigger re-fires on that stale reading every
    /// engine step, overshooting the ladder to its slowest rungs and
    /// then paying recovery decisions to climb back: an edge-chatter
    /// limit cycle. Spacing descending re-decisions out by a fraction
    /// of the averaging lag gives the average time to reflect the
    /// state just chosen, which removes the overshoot without
    /// delaying genuine enforcement (the instantaneous power is
    /// already at or below target when the dwell starts); ascending
    /// (recovery) decisions stay unthrottled.
    pub min_dwell: SimDuration,
}

impl Default for ThermalAware {
    fn default() -> Self {
        ThermalAware {
            engage: 0.95,
            // ~tau/5 of the default thermal averaging lag: long enough
            // for the average to start reflecting the state just
            // chosen, short enough that genuine load increases are
            // answered well within one thermal time constant.
            min_dwell: SimDuration::from_secs(3),
        }
    }
}

impl Governor for ThermalAware {
    fn decide(&mut self, input: &GovernorInput, domain: &FrequencyDomain) -> usize {
        let target = input.budget * self.engage;
        if (target - input.idle_floor).0 <= 0.0 {
            // The budget does not even cover halt power; all the
            // governor can do is run as slowly as possible.
            return domain.table().slowest_index();
        }
        // The observed thermal power normalised back to what it would
        // be at nominal frequency and voltage.
        let nominal_power = input.thermal_power.0 / domain.power_factor();
        if nominal_power <= 0.0 {
            return 0;
        }
        // Fastest state whose projected power fits the target.
        domain.table().highest_within(target.0 / nominal_power)
    }

    /// The answer depends on the thermal power alone (budget and idle
    /// floor are run constants). State `i` is chosen exactly while the
    /// *nominal-normalised* power `np = tp / pf(current)` lies in
    /// `(target/pf(i-1), target/pf(i)]` — with the slowest state also
    /// owning the whole overload region above `target/pf(last-1)`.
    /// After the engine switches to `chosen`, the observed power
    /// corresponds to `np · pf(chosen)`, so the band scales by
    /// `pf(chosen)`; its upper edge for any non-slowest state is then
    /// exactly the engagement target.
    fn hold(&self, input: &GovernorInput, domain: &FrequencyDomain, chosen: usize) -> DecisionHold {
        let table = domain.table();
        let target = input.budget * self.engage;
        if (target - input.idle_floor).0 <= 0.0 || table.len() == 1 {
            // Hopeless budgets pin the slowest state for the whole run;
            // single-state tables have nothing to re-decide.
            return DecisionHold::never();
        }
        let pf_new = table.power_factor(chosen);
        let hi = if chosen == table.slowest_index() {
            Watts(f64::INFINITY)
        } else {
            // target / pf(chosen) · pf(chosen) — the engagement target.
            target
        };
        let lo = if chosen == 0 {
            Watts(f64::NEG_INFINITY)
        } else {
            target * (pf_new / table.power_factor(chosen - 1))
        };
        DecisionHold {
            utilization: None,
            thermal_power: Some((lo, hi)),
            // Rate-limit only the descending direction: that is where
            // the band edge coincides with the enforcement target and
            // bursts form. Recovery (speeding back up) stays instant.
            min_dwell: if chosen > domain.current_index() {
                self.min_dwell
            } else {
                SimDuration::ZERO
            },
        }
    }

    fn name(&self) -> &'static str {
        "thermal-aware"
    }
}

/// Serialisable governor selection for simulation configs; builds the
/// boxed policy instance per frequency domain.
#[derive(Clone, Debug, PartialEq)]
pub enum GovernorKind {
    /// [`Fixed`] at the given P-state index.
    Fixed(usize),
    /// [`OnDemand`] with default thresholds.
    OnDemand,
    /// [`ThermalAware`] with the default engagement margin.
    ThermalAware,
}

impl GovernorKind {
    /// Instantiates the governor.
    pub fn build(&self) -> Box<dyn Governor + Send> {
        match *self {
            GovernorKind::Fixed(index) => Box::new(Fixed(index)),
            GovernorKind::OnDemand => Box::new(OnDemand::default()),
            GovernorKind::ThermalAware => Box::new(ThermalAware::default()),
        }
    }

    /// The policy's report name.
    pub fn name(&self) -> &'static str {
        match self {
            GovernorKind::Fixed(_) => "fixed",
            GovernorKind::OnDemand => "ondemand",
            GovernorKind::ThermalAware => "thermal-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::PStateTable;

    fn domain() -> FrequencyDomain {
        FrequencyDomain::new(PStateTable::p4_xeon())
    }

    fn input(thermal: f64) -> GovernorInput {
        GovernorInput {
            thermal_power: Watts(thermal),
            budget: Watts(40.0),
            idle_floor: Watts(13.6),
            utilization: 1.0,
        }
    }

    #[test]
    fn fixed_clamps_to_table() {
        let d = domain();
        assert_eq!(Fixed(2).decide(&input(50.0), &d), 2);
        assert_eq!(Fixed(99).decide(&input(50.0), &d), 5);
    }

    #[test]
    fn ondemand_follows_utilization() {
        let mut d = domain();
        let mut g = OnDemand::default();
        let at = |utilization: f64| GovernorInput {
            utilization,
            ..input(30.0)
        };
        // Idle drops straight to the slowest state.
        let next = g.decide(&at(0.0), &d);
        assert_eq!(next, 5);
        d.set_state(next);
        // Half-load (one busy SMT sibling) recovers from the slowest
        // state to the one serving 0.5/0.8 of nominal speed — 1.4 GHz
        // (0.636) — instead of staying trapped at 1.2 GHz.
        let next = g.decide(&at(0.5), &d);
        assert_eq!(next, 4);
        d.set_state(next);
        // Busy jumps straight back to nominal.
        assert_eq!(g.decide(&at(1.0), &d), 0);
        assert_eq!(g.decide(&at(0.8), &d), 0);
    }

    #[test]
    fn ondemand_is_monotone_in_utilization() {
        let d = domain();
        let mut g = OnDemand::default();
        let mut last = d.table().slowest_index();
        for tenths in 0..=10 {
            let next = g.decide(
                &GovernorInput {
                    utilization: tenths as f64 / 10.0,
                    ..input(30.0)
                },
                &d,
            );
            assert!(next <= last, "clock dropped as load grew");
            last = next;
        }
    }

    #[test]
    fn thermal_aware_is_idle_at_nominal_when_cool() {
        let d = domain();
        let mut g = ThermalAware::default();
        // Thermal power well under the 38 W target: stay at P0.
        assert_eq!(g.decide(&input(30.0), &d), 0);
        // At the idle floor (nothing running): P0.
        assert_eq!(g.decide(&input(13.6), &d), 0);
    }

    #[test]
    fn thermal_aware_scales_down_under_pressure() {
        let d = domain();
        let mut g = ThermalAware::default();
        // 61 W of thermal power against a 40 W budget: power must
        // shrink to the 38 W target, a factor ~0.62 — P3 (0.59) is the
        // fastest fitting state.
        let idx = g.decide(&input(61.0), &d);
        assert_eq!(idx, 3);
        // And the projection at the chosen state fits the target.
        assert!(61.0 * d.table().power_factor(idx) <= 38.0);
    }

    #[test]
    fn thermal_aware_monotone_in_thermal_power() {
        let d = domain();
        let mut g = ThermalAware::default();
        let mut last = 0;
        for tenths in 136..800 {
            let idx = g.decide(&input(tenths as f64 / 10.0), &d);
            assert!(
                idx >= last,
                "frequency rose as thermal power grew: {last} -> {idx}"
            );
            last = idx;
        }
        assert_eq!(last, d.table().slowest_index());
    }

    #[test]
    fn thermal_aware_projection_accounts_for_current_state() {
        let mut d = domain();
        let mut g = ThermalAware::default();
        // Already slowed to P4: 30 W observed there corresponds to
        // ~63 W of nominal-state power, so speeding back up to P0
        // would overshoot; the governor holds a reduced state.
        d.set_state(4);
        let idx = g.decide(&input(30.0), &d);
        assert!(idx > 0, "governor sped up into an overshoot");
        // Near-idle at P4, though, it returns to nominal: 7 W observed
        // projects to ~15 W even at full clock.
        assert_eq!(g.decide(&input(7.0), &d), 0);
    }

    #[test]
    fn thermal_aware_handles_budget_below_idle_floor() {
        let d = domain();
        let mut g = ThermalAware::default();
        let hopeless = GovernorInput {
            budget: Watts(10.0),
            ..input(30.0)
        };
        assert_eq!(g.decide(&hopeless, &d), d.table().slowest_index());
    }

    #[test]
    fn fixed_hold_never_expires() {
        let d = domain();
        let g = Fixed(2);
        let hold = g.hold(&input(50.0), &d, 2);
        assert_eq!(hold, DecisionHold::never());
        assert!(!hold.is_escaped(0.0, Watts(1e6)));
        assert!(!hold.is_escaped(1.0, Watts(0.0)));
    }

    #[test]
    fn ondemand_hold_band_is_consistent_with_decide() {
        // Safety property of the trigger API: any utilization strictly
        // inside the reported band yields the same decision, and the
        // nearest values outside it yield a different one.
        let d = domain();
        let mut g = OnDemand::default();
        let at = |u: f64| GovernorInput {
            utilization: u,
            ..input(30.0)
        };
        for tenmils in 0..=1000 {
            let u = tenmils as f64 / 1000.0;
            let chosen = g.decide(&at(u), &d);
            let hold = g.hold(&at(u), &d, chosen);
            let (lo, hi) = hold.utilization.expect("utilization drives ondemand");
            assert!(hold.thermal_power.is_none());
            assert!(u >= lo && u <= hi, "u={u} outside its own band [{lo},{hi}]");
            let eps = 1e-9;
            for probe in [
                (lo + eps).min(hi),
                (hi - eps).max(lo),
                (u + eps).min(hi),
                (u - eps).max(lo),
            ] {
                assert_eq!(
                    g.decide(&at(probe), &d),
                    chosen,
                    "decision changed inside the band: u={u} probe={probe}"
                );
            }
            if lo.is_finite() {
                assert_ne!(
                    g.decide(&at(lo - eps), &d),
                    chosen,
                    "band too wide at lo={lo}"
                );
            }
            if hi.is_finite() && hi + eps <= 1.0 {
                assert_ne!(
                    g.decide(&at(hi + eps), &d),
                    chosen,
                    "band too wide at hi={hi}"
                );
            }
        }
    }

    #[test]
    fn thermal_aware_hold_band_is_consistent_with_decide() {
        // As above, sweeping thermal power: after the engine switches
        // the domain to the chosen state, any thermal power strictly
        // inside the band re-yields the chosen state, and values
        // outside it change the answer.
        let mut g = ThermalAware::default();
        for tenths in 137..900 {
            let tp = tenths as f64 / 10.0;
            let mut d = domain();
            d.set_state(2); // Decisions normalise via the current state.
            let chosen = g.decide(&input(tp), &d);
            let hold = g.hold(&input(tp), &d, chosen);
            let (lo, hi) = hold
                .thermal_power
                .expect("thermal power drives the governor");
            assert!(hold.utilization.is_none());
            // Move the domain to the chosen state, as the engine does.
            d.set_state(chosen);
            let eps = 1e-6;
            for probe in [lo.0 + eps, hi.0 - eps] {
                if !probe.is_finite() {
                    continue;
                }
                assert_eq!(
                    g.decide(&input(probe), &d),
                    chosen,
                    "decision changed inside the band: tp={tp} probe={probe}"
                );
            }
            if lo.0.is_finite() {
                assert_ne!(
                    g.decide(&input(lo.0 - eps), &d),
                    chosen,
                    "band too wide at lo={lo:?} (tp={tp})"
                );
            }
            if hi.0.is_finite() {
                assert_ne!(
                    g.decide(&input(hi.0 + eps), &d),
                    chosen,
                    "band too wide at hi={hi:?} (tp={tp})"
                );
            }
            // Any non-slowest state re-decides exactly at the
            // engagement target, so enforcement never lags the budget.
            if chosen != d.table().slowest_index() {
                assert_eq!(hi, Watts(40.0) * 0.95);
            }
        }
    }

    #[test]
    fn thermal_aware_dwell_rate_limits_descent_only() {
        let g = ThermalAware::default();
        assert!(g.min_dwell > SimDuration::ZERO);
        // Overload at nominal: the decision descends the ladder, so
        // the hold carries the dwell.
        let mut d = domain();
        let mut gov = g;
        let chosen = gov.decide(&input(61.0), &d);
        assert!(chosen > 0);
        let hold = gov.hold(&input(61.0), &d, chosen);
        assert_eq!(hold.min_dwell, g.min_dwell);
        // Recovery from a slow state back toward nominal: unthrottled.
        d.set_state(4);
        let chosen = gov.decide(&input(7.0), &d);
        assert_eq!(chosen, 0);
        let hold = gov.hold(&input(7.0), &d, chosen);
        assert_eq!(hold.min_dwell, SimDuration::ZERO);
        // Holding the current state re-arms without a dwell either.
        let d = domain();
        let chosen = gov.decide(&input(30.0), &d);
        assert_eq!(chosen, 0);
        assert_eq!(
            gov.hold(&input(30.0), &d, chosen).min_dwell,
            SimDuration::ZERO
        );
    }

    #[test]
    fn thermal_aware_hold_never_expires_when_hopeless() {
        let d = domain();
        let g = ThermalAware::default();
        let hopeless = GovernorInput {
            budget: Watts(10.0),
            ..input(30.0)
        };
        assert_eq!(
            g.hold(&hopeless, &d, d.table().slowest_index()),
            DecisionHold::never()
        );
    }

    #[test]
    fn single_state_tables_hold_forever() {
        let d = FrequencyDomain::new(PStateTable::nominal_only(
            ebs_units::Hertz::from_ghz(2.2),
            ebs_units::Volts(1.5),
        ));
        assert_eq!(
            OnDemand::default().hold(&input(30.0), &d, 0),
            DecisionHold::never()
        );
        assert_eq!(
            ThermalAware::default().hold(&input(30.0), &d, 0),
            DecisionHold::never()
        );
    }

    #[test]
    fn default_hold_is_zero_width() {
        // A governor that does not implement `hold` re-decides on any
        // signal drift: correct, never stale.
        struct Custom;
        impl Governor for Custom {
            fn decide(&mut self, _: &GovernorInput, _: &FrequencyDomain) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "custom"
            }
        }
        let d = domain();
        let hold = Custom.hold(&input(30.0), &d, 0);
        assert!(!hold.is_escaped(1.0, Watts(30.0)));
        assert!(hold.is_escaped(1.0 - 1e-12, Watts(30.0)));
        assert!(hold.is_escaped(1.0, Watts(30.0 + 1e-9)));
    }

    #[test]
    fn kind_builds_matching_governor() {
        for (kind, name) in [
            (GovernorKind::Fixed(1), "fixed"),
            (GovernorKind::OnDemand, "ondemand"),
            (GovernorKind::ThermalAware, "thermal-aware"),
        ] {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.build().name(), name);
        }
    }
}
