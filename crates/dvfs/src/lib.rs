//! Dynamic voltage/frequency scaling for the simulated testbed.
//!
//! Merkel & Bellosa's evaluation enforces thermal limits by executing
//! `hlt` — a blunt actuator that throws away whole timeslices — and
//! names voltage/frequency scaling as the obvious alternative it does
//! not model (Section 7). This crate supplies that alternative, so the
//! simulator can compare both enforcement mechanisms under the same
//! power budgets:
//!
//! - [`PState`] / [`PStateTable`]: the discrete frequency/voltage
//!   operating points of the simulated Pentium 4 Xeon. Dynamic power
//!   scales with `V² · f` and instruction throughput with `f`, so each
//!   state carries its [`PState::power_factor`] and
//!   [`PState::speed_factor`] relative to the nominal (fastest) state.
//! - [`FrequencyDomain`]: the scaling state of one clock/voltage
//!   plane; [`DomainScope`] sets the granularity (one plane per
//!   package — the paper's testbed, where SMT siblings share clock and
//!   thermal budget — or one per core for modern hybrid parts). Tracks
//!   per-state residency for reporting.
//! - [`Governor`]s deciding the next P-state: [`Fixed`] (pin a state),
//!   [`OnDemand`] (classic utilization-driven stepping), and
//!   [`ThermalAware`] (drives frequency from the same thermal-power
//!   exponential average the `hlt` throttle watches, but engages
//!   *before* the limit so the budget is never reached). Each decision
//!   also reports a [`DecisionHold`] — the signal bands within which
//!   the answer stands — so an event-driven engine re-decides on
//!   utilization/thermal *deltas* instead of a fixed cadence.
//!
//! # Examples
//!
//! ```
//! use ebs_dvfs::{FrequencyDomain, Governor, GovernorInput, PStateTable, ThermalAware};
//! use ebs_units::Watts;
//!
//! let mut domain = FrequencyDomain::new(PStateTable::p4_xeon());
//! let mut governor = ThermalAware::default();
//! // A package pulling 52 W of thermal power against a 40 W budget:
//! let input = GovernorInput {
//!     thermal_power: Watts(52.0),
//!     budget: Watts(40.0),
//!     idle_floor: Watts(13.6),
//!     utilization: 1.0,
//! };
//! let next = governor.decide(&input, &domain);
//! domain.set_state(next);
//! // The governor slowed the clock below nominal to fit the budget.
//! assert!(domain.speed_factor() < 1.0);
//! ```

mod domain;
mod governor;
mod pstate;

pub use domain::{DomainScope, FrequencyDomain, PStateResidency};
pub use governor::{
    DecisionHold, Fixed, Governor, GovernorInput, GovernorKind, OnDemand, ThermalAware,
};
pub use pstate::{PState, PStateTable};
