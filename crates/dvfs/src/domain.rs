//! Frequency domains and their granularity.
//!
//! A [`FrequencyDomain`] is one independently scalable clock/voltage
//! plane. How many a machine has is a property of the hardware
//! generation, captured by [`DomainScope`]: 2006-era parts scale the
//! whole package at once, modern hybrid parts give every core its own
//! plane.

use crate::pstate::{PState, PStateTable};
use ebs_units::{Hertz, SimDuration, Volts};

/// Granularity at which frequency domains are instantiated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DomainScope {
    /// One domain per physical package: all cores (and their SMT
    /// siblings) share a clock and a voltage plane, the paper's
    /// testbed behaviour and the default.
    #[default]
    PerPackage,
    /// One domain per core: each core scales its own plane (SMT
    /// siblings still share theirs). Required for heterogeneous
    /// machines, where classes run distinct P-state tables.
    PerCore,
}

impl DomainScope {
    /// A short name for tables and CSV rows.
    pub const fn name(self) -> &'static str {
        match self {
            DomainScope::PerPackage => "per-package",
            DomainScope::PerCore => "per-core",
        }
    }

    /// Number of domains a package contributes under this scope.
    pub const fn domains_per_package(self, cores_per_package: usize) -> usize {
        match self {
            DomainScope::PerPackage => 1,
            DomainScope::PerCore => cores_per_package,
        }
    }
}

/// Residency of one P-state over a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PStateResidency {
    /// The state's clock frequency.
    pub frequency: Hertz,
    /// Total time the domain spent in the state.
    pub time: SimDuration,
    /// `time` as a fraction of the observed total, in `[0, 1]`.
    pub fraction: f64,
}

/// The scaling state of one clock/voltage plane.
///
/// Under [`DomainScope::PerPackage`] one domain covers a whole
/// physical package; under [`DomainScope::PerCore`] each core gets its
/// own. Hardware threads of an SMT core always share one plane (just
/// as they share one pipeline), so there is never a domain per logical
/// CPU.
#[derive(Clone, Debug)]
pub struct FrequencyDomain {
    table: PStateTable,
    current: usize,
    residency: Vec<SimDuration>,
    observed: SimDuration,
    transitions: u64,
}

impl FrequencyDomain {
    /// Creates a domain starting at the nominal state (P0).
    pub fn new(table: PStateTable) -> Self {
        let n = table.len();
        FrequencyDomain {
            table,
            current: 0,
            residency: vec![SimDuration::ZERO; n],
            observed: SimDuration::ZERO,
            transitions: 0,
        }
    }

    /// The P-state table.
    pub fn table(&self) -> &PStateTable {
        &self.table
    }

    /// Index of the current state.
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The current state.
    pub fn current(&self) -> &PState {
        self.table.get(self.current)
    }

    /// Current clock frequency.
    pub fn frequency(&self) -> Hertz {
        self.current().frequency
    }

    /// Current supply voltage.
    pub fn voltage(&self) -> Volts {
        self.current().voltage
    }

    /// Instruction-throughput factor of the current state relative to
    /// nominal (`f / f₀`).
    pub fn speed_factor(&self) -> f64 {
        self.table.speed_factor(self.current)
    }

    /// Dynamic-power factor of the current state relative to nominal
    /// (`(V/V₀)² · f/f₀`).
    pub fn power_factor(&self) -> f64 {
        self.table.power_factor(self.current)
    }

    /// Dynamic-energy-per-event factor of the current state relative
    /// to nominal (`(V/V₀)²`) — the multiplier to apply to counter-
    /// derived energy, whose event counts already scale with `f`.
    pub fn voltage_scale_sq(&self) -> f64 {
        self.voltage().ratio_squared(self.table.nominal().voltage)
    }

    /// Switches to state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_state(&mut self, index: usize) {
        assert!(
            index < self.table.len(),
            "P-state index {index} out of range (table has {})",
            self.table.len()
        );
        if index != self.current {
            self.transitions += 1;
            self.current = index;
        }
    }

    /// Accounts `dt` of residency in the current state.
    pub fn advance(&mut self, dt: SimDuration) {
        self.residency[self.current] += dt;
        self.observed += dt;
    }

    /// Number of state transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total time observed by [`FrequencyDomain::advance`].
    pub fn observed(&self) -> SimDuration {
        self.observed
    }

    /// Fraction of observed time spent *below* the nominal state —
    /// DVFS's analogue of the `hlt` throttle's throttled fraction.
    pub fn scaled_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            return 0.0;
        }
        let below: SimDuration = self.residency.iter().skip(1).copied().sum::<SimDuration>();
        below.ratio(self.observed)
    }

    /// Time-weighted mean clock frequency over the observed run.
    pub fn mean_frequency(&self) -> Hertz {
        if self.observed.is_zero() {
            return self.table.nominal().frequency;
        }
        let weighted: f64 = self
            .residency
            .iter()
            .enumerate()
            .map(|(i, &t)| self.table.get(i).frequency.0 * t.ratio(self.observed))
            .sum();
        Hertz(weighted)
    }

    /// Per-state residency, fastest state first.
    pub fn residency(&self) -> Vec<PStateResidency> {
        self.residency
            .iter()
            .enumerate()
            .map(|(i, &time)| PStateResidency {
                frequency: self.table.get(i).frequency,
                time,
                fraction: if self.observed.is_zero() {
                    0.0
                } else {
                    time.ratio(self.observed)
                },
            })
            .collect()
    }
}

impl ebs_store::Snapshot for FrequencyDomain {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The p-state table is configuration; the pointer, residency
        // clocks, and transition count evolve.
        w.usize(self.current);
        w.seq(&self.residency, |w, &d| w.duration(d));
        w.duration(self.observed);
        w.u64(self.transitions);
    }

    /// Shape-matched restore: a snapshot taken on a domain with a
    /// *different* P-state table (a no-DVFS warm-up forked into a DVFS
    /// cell, or vice versa) cannot be mapped onto this ladder, so the
    /// saved values are read and discarded and the domain keeps its
    /// freshly constructed state. Deterministic either way — every fork
    /// of the same snapshot takes the same branch.
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let current = r.usize()?;
        let residency = r.seq(|r| r.duration())?;
        let observed = r.duration()?;
        let transitions = r.u64()?;
        if current < self.table.len() && residency.len() == self.residency.len() {
            self.current = current;
            self.residency = residency;
            self.observed = observed;
            self.transitions = transitions;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FrequencyDomain {
        FrequencyDomain::new(PStateTable::p4_xeon())
    }

    #[test]
    fn starts_at_nominal() {
        let d = domain();
        assert_eq!(d.current_index(), 0);
        assert_eq!(d.frequency(), Hertz::from_ghz(2.2));
        assert_eq!(d.speed_factor(), 1.0);
        assert_eq!(d.power_factor(), 1.0);
        assert_eq!(d.voltage_scale_sq(), 1.0);
        assert_eq!(d.transitions(), 0);
    }

    #[test]
    fn set_state_counts_real_transitions_only() {
        let mut d = domain();
        d.set_state(3);
        d.set_state(3);
        d.set_state(0);
        assert_eq!(d.transitions(), 2);
        assert_eq!(d.current_index(), 0);
    }

    #[test]
    fn residency_accounts_per_state() {
        let mut d = domain();
        d.advance(SimDuration::from_secs(3));
        d.set_state(5);
        d.advance(SimDuration::from_secs(1));
        assert_eq!(d.observed(), SimDuration::from_secs(4));
        let res = d.residency();
        assert_eq!(res[0].time, SimDuration::from_secs(3));
        assert!((res[0].fraction - 0.75).abs() < 1e-12);
        assert_eq!(res[5].time, SimDuration::from_secs(1));
        assert!((d.scaled_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_frequency_is_time_weighted() {
        let mut d = domain();
        d.advance(SimDuration::from_secs(1));
        d.set_state(5); // 1.2 GHz
        d.advance(SimDuration::from_secs(1));
        let mean = d.mean_frequency();
        assert!((mean.as_ghz() - 1.7).abs() < 1e-9, "{mean:?}");
    }

    #[test]
    fn empty_observation_defaults() {
        let d = domain();
        assert_eq!(d.scaled_fraction(), 0.0);
        assert_eq!(d.mean_frequency(), Hertz::from_ghz(2.2));
        assert!(d.residency().iter().all(|r| r.fraction == 0.0));
    }

    #[test]
    fn voltage_scale_sq_tracks_current_state() {
        let mut d = domain();
        d.set_state(5);
        assert!((d.voltage_scale_sq() - (1.25f64 / 1.5).powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_rejected() {
        let mut d = domain();
        d.set_state(6);
    }
}
