//! Fleet determinism: a fleet run is a pure function of its seed, and
//! worker-count choices change wall-clock only — never results.
//!
//! The oracle is layered, sharpest last: identical epoch CSV bytes
//! (every rolled-up metric), bit-equal per-host reports, and equal
//! per-host end-state hashes (which cover every serialized engine
//! field).

use ebs_fleet::{worker_divergence, DispatchPolicy, Fleet, FleetConfig, PowerBudget};
use ebs_sim::SimConfig;
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};
use proptest::prelude::*;

/// A small mixed-shape fleet: 4 hosts, 40 logical CPUs total. One
/// host is hybrid (4P+4E), so every property below also pins down
/// determinism with class-heterogeneous hosts in the rack.
fn small_fleet(seed: u64, policy: DispatchPolicy) -> FleetConfig {
    let workload = OpenWorkload::new(
        vec![catalog::bitcnts(), catalog::memrw(), catalog::aluadd()],
        24.0,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(2),
        floor: 0.3,
    })
    .service_work(200_000_000, 600_000_000);
    FleetConfig::new(
        SimConfig::xseries445()
            .energy_aware(true)
            .throttling(true)
            .respawn(false)
            .strided(),
        vec![
            TopologyPreset::Dual,
            TopologyPreset::XSeries445 { smt: false },
            TopologyPreset::XSeries445 { smt: true },
            TopologyPreset::Hybrid8,
        ],
        workload,
    )
    .seed(seed)
    .dispatch(policy)
    .budget(PowerBudget::rack(Watts(30.0 * 40.0)))
    .epoch(SimDuration::from_millis(250))
}

fn run(cfg: FleetConfig, epochs: usize) -> (String, Vec<u64>) {
    let mut fleet = Fleet::new(cfg);
    fleet.run(epochs);
    (fleet.epochs_csv(), fleet.state_hashes())
}

fn policy(idx: usize) -> DispatchPolicy {
    [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::PowerAware,
    ][idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed ⇒ identical fleet CSV and per-host end-state hashes
    /// across 1, 2, and 4 workers, under every dispatch policy.
    #[test]
    fn fleet_runs_are_worker_count_invariant(
        seed in 0u64..1_000,
        policy_idx in 0usize..3,
    ) {
        let cfg = small_fleet(seed, policy(policy_idx));
        let (csv1, hashes1) = run(cfg.clone().workers(1), 8);
        let (csv2, hashes2) = run(cfg.clone().workers(2), 8);
        let (csv4, hashes4) = run(cfg.workers(4), 8);
        prop_assert_eq!(&csv1, &csv2, "CSV diverged between 1 and 2 workers");
        prop_assert_eq!(&csv1, &csv4, "CSV diverged between 1 and 4 workers");
        prop_assert_eq!(&hashes1, &hashes2, "state hashes diverged at 2 workers");
        prop_assert_eq!(&hashes1, &hashes4, "state hashes diverged at 4 workers");
    }
}

#[test]
fn same_seed_reproduces_and_different_seed_does_not() {
    let epochs = 8;
    let (csv_a, hashes_a) = run(
        small_fleet(7, DispatchPolicy::PowerAware).workers(2),
        epochs,
    );
    let (csv_b, hashes_b) = run(
        small_fleet(7, DispatchPolicy::PowerAware).workers(2),
        epochs,
    );
    assert_eq!(csv_a, csv_b, "same seed must reproduce byte-identically");
    assert_eq!(hashes_a, hashes_b);
    let (csv_c, _) = run(
        small_fleet(8, DispatchPolicy::PowerAware).workers(2),
        epochs,
    );
    assert_ne!(csv_a, csv_c, "a different seed must change the run");
}

#[test]
fn fleet_actually_serves_the_workload() {
    let mut fleet = Fleet::new(small_fleet(3, DispatchPolicy::LeastLoaded).workers(2));
    fleet.run(12);
    let report = fleet.report();
    assert_eq!(report.hosts, 4);
    assert!(report.arrivals > 10, "arrivals: {}", report.arrivals);
    assert!(report.completions > 0, "nothing completed");
    assert!(report.instructions_retired > 0);
    assert!(report.true_energy.0 > 0.0);
    assert!(report.latency.count > 0, "no sojourn samples pooled");
    // Every host must have received work under least-loaded dispatch
    // at this arrival rate.
    let per_host = fleet.host_reports();
    for (i, r) in per_host.iter().enumerate() {
        assert!(r.instructions_retired > 0, "host {i} retired nothing");
    }
    // The rolled-up totals must equal the per-host sums exactly.
    assert_eq!(
        report.completions,
        per_host.iter().map(|r| r.completions).sum::<u64>()
    );
}

#[test]
fn worker_divergence_reports_identity_for_a_deterministic_fleet() {
    let cfg = small_fleet(11, DispatchPolicy::PowerAware);
    let verdict = worker_divergence(&cfg, 4, 1, 4);
    assert!(
        verdict.contains("identical"),
        "fleet diverged across workers: {verdict}"
    );
}
