//! Rack-level power budgeting.
//!
//! A rack has one provisioned feed; the fleet apportions it to hosts
//! *before* the run, and each host enforces its share with the same
//! per-host mechanisms the paper studies (`hlt` throttling or DVFS via
//! [`ebs_sim::MaxPowerSpec`]). The split is static and proportional to
//! logical CPU count — the dispatcher then works *within* the split by
//! steering load toward hosts with power headroom, rather than
//! renegotiating shares mid-run (which would break per-host
//! determinism under concurrent stepping).

use ebs_units::Watts;

/// A rack-level power budget shared by every host in the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerBudget {
    /// The total provisioned power for the rack.
    pub total: Watts,
}

impl PowerBudget {
    /// Creates a rack budget.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not a finite, positive wattage.
    pub fn rack(total: Watts) -> Self {
        assert!(
            total.0.is_finite() && total.0 > 0.0,
            "rack budget must be finite and positive, got {total:?}"
        );
        PowerBudget { total }
    }

    /// Apportions the rack budget across hosts proportionally to their
    /// logical CPU counts, so a 32-CPU NUMA box gets four times the
    /// share of an 8-CPU dual. The shares sum to `total` up to
    /// floating-point rounding.
    ///
    /// # Panics
    ///
    /// Panics if `host_cpus` is empty or sums to zero.
    pub fn shares(&self, host_cpus: &[usize]) -> Vec<Watts> {
        let total_cpus: usize = host_cpus.iter().sum();
        assert!(total_cpus > 0, "cannot apportion a budget over zero CPUs");
        host_cpus
            .iter()
            .map(|&c| Watts(self.total.0 * c as f64 / total_cpus as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_proportional_and_sum_to_total() {
        let budget = PowerBudget::rack(Watts(400.0));
        let shares = budget.shares(&[8, 8, 16, 32]);
        assert_eq!(shares.len(), 4);
        assert!((shares[0].0 - 50.0).abs() < 1e-9);
        assert!((shares[2].0 - 100.0).abs() < 1e-9);
        assert!((shares[3].0 - 200.0).abs() < 1e-9);
        let sum: f64 = shares.iter().map(|w| w.0).sum();
        assert!((sum - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_budget_is_rejected() {
        let _ = PowerBudget::rack(Watts(0.0));
    }

    #[test]
    #[should_panic(expected = "zero CPUs")]
    fn empty_fleet_is_rejected() {
        let _ = PowerBudget::rack(Watts(100.0)).shares(&[]);
    }
}
