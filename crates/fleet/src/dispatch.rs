//! Arrival placement policies.
//!
//! The dispatcher routes one arrival at a time, in due order, using
//! only epoch-boundary knowledge: per-host runnable counts (kept
//! current as it routes) and the per-host power draw measured over the
//! previous epoch (frozen for the epoch — hosts step concurrently, so
//! mid-epoch draw is unobservable without breaking worker-count
//! invariance). Every decision is a pure function of the stats
//! vector, which keeps fleet runs seed-deterministic.

use ebs_units::Watts;

/// How the dispatcher places open-workload arrivals on hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through hosts in id order, ignoring load and power.
    RoundRobin,
    /// Send each arrival to the host with the lowest runnable-per-CPU
    /// ratio; ties break toward the lowest host id.
    LeastLoaded,
    /// Least-loaded among hosts with power headroom (measured draw
    /// below their budget share); ties prefer the larger headroom,
    /// then the lowest host id. Falls back to plain least-loaded when
    /// every host is at or over its share.
    PowerAware,
}

impl DispatchPolicy {
    /// The policy's name as used in experiment cell keys and CSV rows.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::PowerAware => "power-aware",
        }
    }
}

/// One host's state as the dispatcher sees it at an epoch boundary.
#[derive(Clone, Copy, Debug)]
pub struct HostStat {
    /// Host id (index into the fleet).
    pub host: usize,
    /// Runnable tasks, *including* arrivals routed earlier this epoch
    /// but not yet spawned — otherwise every arrival in an epoch would
    /// pile onto the same host.
    pub runnable: usize,
    /// Logical CPU count (the denominator of the load ratio).
    pub cpus: usize,
    /// Mean power draw over the previous epoch.
    pub power_w: f64,
    /// The host's share of the rack budget.
    pub budget_w: Watts,
}

impl HostStat {
    /// Power headroom: share minus measured draw, clamped at zero.
    pub fn headroom_w(&self) -> f64 {
        (self.budget_w.0 - self.power_w).max(0.0)
    }

    /// Whether `self` is less loaded than `other`, comparing
    /// runnable-per-CPU ratios by cross-multiplication so the
    /// comparison is exact in integers (no float ties on mixed
    /// topologies like 3/8 vs 12/32).
    fn less_loaded_than(&self, other: &HostStat) -> bool {
        self.runnable * other.cpus < other.runnable * self.cpus
    }
}

/// Routes arrivals to hosts according to a [`DispatchPolicy`].
#[derive(Clone, Debug)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    /// Round-robin cursor (next host id to use).
    rr_next: usize,
}

impl Dispatcher {
    /// Creates a dispatcher with the given policy.
    pub fn new(policy: DispatchPolicy) -> Self {
        Dispatcher { policy, rr_next: 0 }
    }

    /// The policy this dispatcher routes with.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Picks the host for the next arrival. Returns an index into
    /// `stats` (== the host id, as the fleet passes hosts in order).
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    pub fn pick(&mut self, stats: &[HostStat]) -> usize {
        assert!(!stats.is_empty(), "cannot dispatch to an empty fleet");
        match self.policy {
            DispatchPolicy::RoundRobin => {
                let host = self.rr_next % stats.len();
                self.rr_next = (self.rr_next + 1) % stats.len();
                host
            }
            DispatchPolicy::LeastLoaded => Self::least_loaded(stats),
            DispatchPolicy::PowerAware => {
                let with_headroom: Vec<HostStat> = stats
                    .iter()
                    .filter(|s| s.headroom_w() > 0.0)
                    .copied()
                    .collect();
                if with_headroom.is_empty() {
                    // The whole rack is saturated; shed load evenly.
                    Self::least_loaded(stats)
                } else {
                    Self::power_aware(&with_headroom)
                }
            }
        }
    }

    /// Lowest runnable-per-CPU ratio; ties break to the lowest id.
    fn least_loaded(stats: &[HostStat]) -> usize {
        let mut best = &stats[0];
        for s in &stats[1..] {
            if s.less_loaded_than(best) {
                best = s;
            }
        }
        best.host
    }

    /// Least-loaded, then max headroom, then lowest id — over hosts
    /// already filtered to positive headroom.
    fn power_aware(stats: &[HostStat]) -> usize {
        let mut best = &stats[0];
        for s in &stats[1..] {
            if s.less_loaded_than(best) {
                best = s;
            } else if !best.less_loaded_than(s) {
                // Equal load ratio: prefer the larger headroom.
                // total_cmp keeps the comparison deterministic even
                // for equal headrooms (falls through to lowest id by
                // iteration order).
                if s.headroom_w().total_cmp(&best.headroom_w()) == std::cmp::Ordering::Greater {
                    best = s;
                }
            }
        }
        best.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(host: usize, runnable: usize, cpus: usize, power_w: f64, budget_w: f64) -> HostStat {
        HostStat {
            host,
            runnable,
            cpus,
            power_w,
            budget_w: Watts(budget_w),
        }
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let stats: Vec<HostStat> = (0..3).map(|h| stat(h, 10 * h, 8, 0.0, 100.0)).collect();
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        let picks: Vec<usize> = (0..7).map(|_| d.pick(&stats)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_compares_ratios_not_counts() {
        // Host 1 has more runnable tasks but 4x the CPUs: 6/32 < 3/8.
        let stats = vec![stat(0, 3, 8, 0.0, 100.0), stat(1, 6, 32, 0.0, 100.0)];
        let mut d = Dispatcher::new(DispatchPolicy::LeastLoaded);
        assert_eq!(d.pick(&stats), 1);
    }

    #[test]
    fn least_loaded_ties_break_to_lowest_host_id() {
        // 4/8 == 16/32 == 4/8: all tied, host 0 wins.
        let stats = vec![
            stat(2, 4, 8, 0.0, 100.0),
            stat(0, 16, 32, 0.0, 100.0),
            stat(1, 4, 8, 0.0, 100.0),
        ];
        // The fleet passes stats in host order; emulate that here with
        // shuffled ids to prove the tie-break keys on `host`, not on
        // slice position alone — stats arrive sorted by host id.
        let mut sorted = stats;
        sorted.sort_by_key(|s| s.host);
        let mut d = Dispatcher::new(DispatchPolicy::LeastLoaded);
        assert_eq!(d.pick(&sorted), 0);
    }

    #[test]
    fn power_aware_skips_hosts_over_their_share() {
        // Host 0 is the least loaded but is over budget; host 1 has
        // headroom and must win despite the higher load.
        let stats = vec![stat(0, 1, 8, 120.0, 100.0), stat(1, 4, 8, 60.0, 100.0)];
        let mut d = Dispatcher::new(DispatchPolicy::PowerAware);
        assert_eq!(d.pick(&stats), 1);
    }

    #[test]
    fn power_aware_breaks_load_ties_by_headroom() {
        // Equal load; host 1 has 40 W headroom vs host 0's 10 W.
        let stats = vec![stat(0, 2, 8, 90.0, 100.0), stat(1, 2, 8, 60.0, 100.0)];
        let mut d = Dispatcher::new(DispatchPolicy::PowerAware);
        assert_eq!(d.pick(&stats), 1);
    }

    #[test]
    fn power_aware_falls_back_to_least_loaded_when_rack_saturated() {
        let stats = vec![stat(0, 5, 8, 130.0, 100.0), stat(1, 2, 8, 140.0, 100.0)];
        let mut d = Dispatcher::new(DispatchPolicy::PowerAware);
        assert_eq!(d.pick(&stats), 1);
    }

    #[test]
    fn power_aware_full_tie_goes_to_lowest_id() {
        let stats = vec![stat(0, 2, 8, 50.0, 100.0), stat(1, 2, 8, 50.0, 100.0)];
        let mut d = Dispatcher::new(DispatchPolicy::PowerAware);
        assert_eq!(d.pick(&stats), 0);
    }
}
