//! The fleet proper: N hosts, one shared arrival stream, a dispatcher,
//! and a rack budget.
//!
//! # Execution model
//!
//! Time advances in *dispatcher epochs*. At each epoch boundary the
//! fleet drains every arrival due within the upcoming epoch from the
//! shared [`ArrivalProcess`] — one at a time, in due order — and asks
//! the [`Dispatcher`] where each one goes. The chosen host's engine
//! gets the arrival as a [`RoutedArrival`] (the same currency the
//! parallel core's synchronizer uses between packages) and spawns it
//! at its exact due instant during the epoch. The hosts then step
//! through the epoch concurrently via [`map_parallel`].
//!
//! Determinism: routing is serial and a pure function of
//! epoch-boundary state; hosts are independent engines with disjoint
//! seeds; and [`map_parallel`] only changes *when* each host steps,
//! never what it computes. A fleet run is therefore bit-identical
//! across worker counts and reproducible per seed — the property the
//! determinism suite pins down.

use crate::budget::PowerBudget;
use crate::dispatch::{DispatchPolicy, Dispatcher, HostStat};
use ebs_sim::{
    build_engine, divergence_verdict, map_parallel, LatencyStats, MaxPowerSpec, RoutedArrival,
    SimConfig, SimEngine, SimReport,
};
use ebs_topology::TopologyPreset;
use ebs_units::{Joules, SimDuration, SimTime, Watts};
use ebs_workloads::{ArrivalProcess, OpenWorkload};
use std::sync::Mutex;

/// Salt for deriving per-host engine seeds from the fleet seed, so no
/// host shares an RNG stream with the fleet-level arrival process or
/// with another host.
const HOST_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration for a [`Fleet`] run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Per-host engine template: policies, governors, tick shape.
    /// Topology, seed, power cap, and any open workload are overridden
    /// per host (hosts never draw their own arrivals).
    pub base: SimConfig,
    /// One topology preset per host; mixed shapes are the point, and
    /// hybrid (two-class) presets are welcome — each host engine picks
    /// up its own class layout and frequency-domain scope from its
    /// preset, so homogeneous and big.LITTLE hosts coexist in a rack.
    pub hosts: Vec<TopologyPreset>,
    /// Fleet seed: drives the shared arrival process and derives every
    /// host's engine seed.
    pub seed: u64,
    /// Dispatcher epoch: how often placement decisions are made.
    pub epoch: SimDuration,
    /// Arrival placement policy.
    pub dispatch: DispatchPolicy,
    /// Rack power budget, apportioned to hosts by logical CPU count.
    pub budget: PowerBudget,
    /// The open workload every host serves (arrival stream + palette).
    pub workload: OpenWorkload,
    /// Worker threads for stepping hosts between epochs.
    pub workers: usize,
}

impl FleetConfig {
    /// Creates a fleet config with a 250 ms epoch, least-loaded
    /// dispatch, a 40 W/logical-CPU rack budget, seed 42, and one
    /// worker.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn new(base: SimConfig, hosts: Vec<TopologyPreset>, workload: OpenWorkload) -> Self {
        assert!(!hosts.is_empty(), "a fleet needs at least one host");
        let total_cpus: usize = hosts.iter().map(|p| p.builder().n_cpus()).sum();
        FleetConfig {
            base,
            hosts,
            seed: 42,
            epoch: SimDuration::from_millis(250),
            dispatch: DispatchPolicy::LeastLoaded,
            budget: PowerBudget::rack(Watts(40.0 * total_cpus as f64)),
            workload,
            workers: 1,
        }
    }

    /// Sets the fleet seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the dispatcher epoch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "dispatcher epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Sets the placement policy.
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch = policy;
        self
    }

    /// Sets the rack power budget.
    pub fn budget(mut self, budget: PowerBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the worker-thread count for concurrent host stepping
    /// (0 is treated as 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// One simulated host: an engine plus the dispatcher's book-keeping.
struct Host {
    engine: Box<dyn SimEngine>,
    /// Preset name, for CSV rows and divergence messages.
    preset: &'static str,
    cpus: usize,
    /// This host's share of the rack budget.
    share: Watts,
    /// Mean power draw over the previous epoch (0 before the first).
    power_w: f64,
    /// Report cursors for per-epoch deltas.
    last_instructions: u64,
    last_completions: u64,
    last_energy_j: f64,
    last_samples: usize,
}

/// Per-epoch fleet metrics, rolled up across hosts.
#[derive(Clone, Debug)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub index: usize,
    /// Epoch start instant.
    pub start: SimTime,
    /// Epoch end instant.
    pub end: SimTime,
    /// Arrivals routed during this epoch.
    pub arrivals: u64,
    /// Task completions across the fleet during this epoch.
    pub completions: u64,
    /// Instructions retired across the fleet during this epoch.
    pub instructions: u64,
    /// Energy consumed across the fleet during this epoch.
    pub energy_j: f64,
    /// Mean fleet power over the epoch.
    pub power_w: f64,
    /// Budget allocated but not drawn: sum over hosts of
    /// `max(0, share - draw)`.
    pub stranded_w: f64,
    /// Fleet throughput over the epoch, in giga-instructions/s.
    pub gips: f64,
    /// Epoch efficiency: giga-instructions per joule.
    pub gips_per_joule: f64,
    /// Sojourn-time stats over tasks that completed this epoch.
    pub latency: LatencyStats,
}

/// Column header matching [`EpochMetrics::csv_row`].
pub const CSV_HEADER: &str = "epoch,start_s,end_s,arrivals,completions,instructions,\
     energy_j,power_w,stranded_w,gips,gips_per_joule,lat_count,lat_p50_s,lat_p95_s,lat_p99_s";

impl EpochMetrics {
    /// Renders the epoch as one CSV row (no trailing newline),
    /// matching [`CSV_HEADER`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.3},{:.3},{},{},{},{:.6},{:.3},{:.3},{:.4},{:.5},{},{:.4},{:.4},{:.4}",
            self.index,
            self.start.as_secs_f64(),
            self.end.as_secs_f64(),
            self.arrivals,
            self.completions,
            self.instructions,
            self.energy_j,
            self.power_w,
            self.stranded_w,
            self.gips,
            self.gips_per_joule,
            self.latency.count,
            self.latency.p50_s,
            self.latency.p95_s,
            self.latency.p99_s,
        )
    }
}

/// Whole-run fleet summary, rolled up from per-host [`SimReport`]s.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Host count.
    pub hosts: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Arrivals routed over the whole run.
    pub arrivals: u64,
    /// Completions across the fleet.
    pub completions: u64,
    /// Instructions retired across the fleet.
    pub instructions_retired: u64,
    /// Total energy across the fleet.
    pub true_energy: Joules,
    /// Fleet throughput in giga-instructions/s.
    pub gips: f64,
    /// Whole-run efficiency in giga-instructions per joule.
    pub gips_per_joule: f64,
    /// Sojourn stats pooled over every completed task on every host.
    pub latency: LatencyStats,
    /// Mean stranded power across epochs.
    pub stranded_w_mean: f64,
}

/// A rack of simulated hosts behind one dispatcher.
pub struct Fleet {
    cfg: FleetConfig,
    hosts: Vec<Host>,
    dispatcher: Dispatcher,
    arrivals: ArrivalProcess,
    now: SimTime,
    routed_total: u64,
    epochs: Vec<EpochMetrics>,
}

impl Fleet {
    /// Builds the fleet: apportions the rack budget, derives per-host
    /// seeds, and constructs each host's engine through
    /// [`build_engine`] (so `base.parallel(n)` selects the partitioned
    /// core per host, and everything else the strided/fixed core).
    pub fn new(cfg: FleetConfig) -> Self {
        let cpus: Vec<usize> = cfg.hosts.iter().map(|p| p.builder().n_cpus()).collect();
        let shares = cfg.budget.shares(&cpus);
        let hosts = cfg
            .hosts
            .iter()
            .zip(cpus.iter().zip(shares.iter()))
            .enumerate()
            .map(|(i, (preset, (&cpus, &share)))| {
                let per_logical = Watts(share.0 / cpus as f64);
                let host_cfg = cfg
                    .base
                    .clone()
                    .topology(preset.builder())
                    .closed()
                    .seed(host_seed(cfg.seed, i))
                    .max_power(MaxPowerSpec::PerLogical(per_logical));
                Host {
                    engine: build_engine(host_cfg),
                    preset: preset.name(),
                    cpus,
                    share,
                    power_w: 0.0,
                    last_instructions: 0,
                    last_completions: 0,
                    last_energy_j: 0.0,
                    last_samples: 0,
                }
            })
            .collect();
        let arrivals = ArrivalProcess::new(cfg.workload.clone(), cfg.seed);
        let dispatcher = Dispatcher::new(cfg.dispatch);
        Fleet {
            cfg,
            hosts,
            dispatcher,
            arrivals,
            now: SimTime::ZERO,
            routed_total: 0,
            epochs: Vec::new(),
        }
    }

    /// The fleet's config.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Current simulated time (always an epoch boundary).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Host count.
    pub fn hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Per-epoch metrics recorded so far.
    pub fn epochs(&self) -> &[EpochMetrics] {
        &self.epochs
    }

    /// Total arrivals routed so far.
    pub fn routed(&self) -> u64 {
        self.routed_total
    }

    /// `host,preset,cpus,share_w` lines describing the rack layout.
    pub fn layout_csv(&self) -> String {
        let mut out = String::from("host,preset,cpus,share_w\n");
        for (i, h) in self.hosts.iter().enumerate() {
            out.push_str(&format!("{},{},{},{:.3}\n", i, h.preset, h.cpus, h.share.0));
        }
        out
    }

    /// Advances the fleet by exactly one dispatcher epoch: route every
    /// arrival due within it, step all hosts concurrently, then roll
    /// up the epoch's metrics.
    pub fn run_epoch(&mut self) {
        let boundary = self.now + self.cfg.epoch;
        let epoch_secs = self.cfg.epoch.as_secs_f64();

        // --- Route (serial, due order). Runnable counts are kept
        // current as arrivals land; power draw stays frozen at the
        // previous epoch's measurement.
        let mut routed = vec![0usize; self.hosts.len()];
        let base_runnable: Vec<usize> = self
            .hosts
            .iter()
            .map(|h| h.engine.runnable_tasks())
            .collect();
        let mut arrivals_this_epoch = 0u64;
        while self.arrivals.next_arrival() <= boundary {
            let due = self.arrivals.next_arrival();
            for a in self.arrivals.pop_due(due) {
                let program = self.arrivals.spec().materialize(&a);
                let stats: Vec<HostStat> = self
                    .hosts
                    .iter()
                    .enumerate()
                    .map(|(i, h)| HostStat {
                        host: i,
                        runnable: base_runnable[i] + routed[i],
                        cpus: h.cpus,
                        power_w: h.power_w,
                        budget_w: h.share,
                    })
                    .collect();
                let idx = self.dispatcher.pick(&stats);
                self.hosts[idx].engine.queue_arrival(RoutedArrival {
                    due,
                    program,
                    seed: a.seed,
                    phase: a.phase,
                });
                routed[idx] += 1;
                arrivals_this_epoch += 1;
            }
        }
        self.routed_total += arrivals_this_epoch;

        // --- Step all hosts through the epoch, possibly concurrently.
        // Hosts are independent engines, so the schedule of *which
        // worker steps which host* cannot change any host's state.
        let epoch = self.cfg.epoch;
        let slots: Vec<Mutex<&mut Host>> = self.hosts.iter_mut().map(Mutex::new).collect();
        map_parallel(&slots, self.cfg.workers, |slot| {
            slot.lock()
                .expect("host mutex poisoned")
                .engine
                .run_for(epoch);
        });

        // --- Roll up (serial, host order).
        let mut completions = 0u64;
        let mut instructions = 0u64;
        let mut energy_j = 0.0f64;
        let mut stranded_w = 0.0f64;
        let mut samples: Vec<f64> = Vec::new();
        for host in &mut self.hosts {
            let report = host.engine.report();
            let d_instr = report.instructions_retired - host.last_instructions;
            let d_energy = report.true_energy.0 - host.last_energy_j;
            completions += report.completions - host.last_completions;
            instructions += d_instr;
            energy_j += d_energy;
            let all = host.engine.sojourn_samples();
            samples.extend(all[host.last_samples..].iter().map(|&(_, s)| s));
            host.last_instructions = report.instructions_retired;
            host.last_completions = report.completions;
            host.last_energy_j = report.true_energy.0;
            host.last_samples = all.len();
            host.power_w = d_energy / epoch_secs;
            stranded_w += (host.share.0 - host.power_w).max(0.0);
        }
        self.epochs.push(EpochMetrics {
            index: self.epochs.len(),
            start: self.now,
            end: boundary,
            arrivals: arrivals_this_epoch,
            completions,
            instructions,
            energy_j,
            power_w: energy_j / epoch_secs,
            stranded_w,
            gips: instructions as f64 / 1e9 / epoch_secs,
            gips_per_joule: if energy_j > 0.0 {
                instructions as f64 / 1e9 / energy_j
            } else {
                0.0
            },
            latency: LatencyStats::from_samples(samples),
        });
        self.now = boundary;
    }

    /// Runs `n` dispatcher epochs.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.run_epoch();
        }
    }

    /// Whole-run summary rolled up from per-host reports.
    pub fn report(&self) -> FleetReport {
        let reports = self.host_reports();
        let completions: u64 = reports.iter().map(|r| r.completions).sum();
        let instructions: u64 = reports.iter().map(|r| r.instructions_retired).sum();
        let energy: f64 = reports.iter().map(|r| r.true_energy.0).sum();
        let duration_s = self.now.as_secs_f64();
        let samples: Vec<f64> = self
            .hosts
            .iter()
            .flat_map(|h| h.engine.sojourn_samples().into_iter().map(|(_, s)| s))
            .collect();
        let stranded_w_mean = if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.stranded_w).sum::<f64>() / self.epochs.len() as f64
        };
        FleetReport {
            hosts: self.hosts.len(),
            duration: self.now.saturating_since(SimTime::ZERO),
            arrivals: self.routed_total,
            completions,
            instructions_retired: instructions,
            true_energy: Joules(energy),
            gips: if duration_s > 0.0 {
                instructions as f64 / 1e9 / duration_s
            } else {
                0.0
            },
            gips_per_joule: if energy > 0.0 {
                instructions as f64 / 1e9 / energy
            } else {
                0.0
            },
            latency: LatencyStats::from_samples(samples),
            stranded_w_mean,
        }
    }

    /// Every host's full [`SimReport`], in host order.
    pub fn host_reports(&self) -> Vec<SimReport> {
        self.hosts.iter().map(|h| h.engine.report()).collect()
    }

    /// Every host's end-state hash, in host order — the sharpest
    /// equality oracle for determinism checks.
    pub fn state_hashes(&self) -> Vec<u64> {
        self.hosts.iter().map(|h| h.engine.state_hash()).collect()
    }

    /// The recorded epochs as a CSV document ([`CSV_HEADER`] + rows).
    pub fn epochs_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for e in &self.epochs {
            out.push_str(&e.csv_row());
            out.push('\n');
        }
        out
    }
}

/// Derives host `i`'s engine seed from the fleet seed. Never equal to
/// the fleet seed itself (which feeds the arrival process).
fn host_seed(fleet_seed: u64, host: usize) -> u64 {
    fleet_seed.wrapping_add(HOST_SEED_SALT.wrapping_mul(host as u64 + 1))
}

/// Re-runs a fleet config at two worker counts with event tracing on
/// and names the first divergent host and event — the fleet-level
/// analogue of [`ebs_sim::parallel_divergence`], reusing the same
/// verdict wording so CI failures read alike at both layers.
pub fn worker_divergence(
    cfg: &FleetConfig,
    epochs: usize,
    workers_a: usize,
    workers_b: usize,
) -> String {
    let run = |workers: usize| {
        let mut traced = cfg.clone().workers(workers);
        traced.base = traced.base.clone().trace_events(true);
        let mut fleet = Fleet::new(traced);
        fleet.run(epochs);
        fleet
    };
    let a = run(workers_a);
    let b = run(workers_b);
    let (ra, rb) = (a.host_reports(), b.host_reports());
    for (h, (report_a, report_b)) in ra.iter().zip(rb.iter()).enumerate() {
        if !report_a.bit_eq(report_b) {
            let ea = a.hosts[h].engine.event_stream().unwrap_or_default();
            let eb = b.hosts[h].engine.event_stream().unwrap_or_default();
            return format!(
                "host {h} ({}): {}",
                a.hosts[h].preset,
                divergence_verdict(&ea, &eb)
            );
        }
    }
    format!(
        "per-host reports identical across {workers_a} and {workers_b} workers ({} hosts)",
        ra.len()
    )
}
