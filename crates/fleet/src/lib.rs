//! EBS fleet layer: a rack of simulated hosts behind one dispatcher.
//!
//! The paper evaluates energy-aware scheduling *within* one
//! multiprocessor. This crate scales the question out one level: N
//! independent host simulations (mixed [`TopologyPreset`] shapes), a
//! cluster [`Dispatcher`] that routes a shared open workload's
//! arrivals across them each epoch, and a rack-level [`PowerBudget`]
//! apportioned to hosts and enforced jointly with each host's own
//! `hlt`/DVFS governor.
//!
//! Every host is a [`ebs_sim::SimEngine`] trait object built through
//! [`ebs_sim::build_engine`], so a fleet can mix the fixed-tick,
//! strided, and partitioned-parallel cores without caring which is
//! which. Hosts step concurrently between dispatcher epochs via
//! [`ebs_sim::map_parallel`]; runs are seed-deterministic and
//! worker-count-invariant (see `tests/determinism.rs`).
//!
//! [`TopologyPreset`]: ebs_topology::TopologyPreset
//!
//! # Example
//!
//! ```
//! use ebs_fleet::{DispatchPolicy, Fleet, FleetConfig, PowerBudget};
//! use ebs_sim::SimConfig;
//! use ebs_topology::TopologyPreset;
//! use ebs_units::{SimDuration, Watts};
//! use ebs_workloads::{catalog, OpenWorkload};
//!
//! let workload = OpenWorkload::new(vec![catalog::aluadd(), catalog::memrw()], 8.0)
//!     .service_work(200_000_000, 500_000_000);
//! let cfg = FleetConfig::new(
//!     SimConfig::xseries445().energy_aware(true).strided(),
//!     vec![TopologyPreset::Dual, TopologyPreset::XSeries445 { smt: false }],
//!     workload,
//! )
//! .seed(7)
//! .dispatch(DispatchPolicy::PowerAware)
//! .budget(PowerBudget::rack(Watts(512.0)))
//! .epoch(SimDuration::from_millis(250));
//! let mut fleet = Fleet::new(cfg);
//! fleet.run(8); // eight dispatcher epochs = 2 s
//! let report = fleet.report();
//! assert_eq!(report.hosts, 2);
//! assert!(report.instructions_retired > 0);
//! ```

mod budget;
mod dispatch;
mod fleet;

pub use budget::PowerBudget;
pub use dispatch::{DispatchPolicy, Dispatcher, HostStat};
pub use fleet::{worker_divergence, EpochMetrics, Fleet, FleetConfig, FleetReport, CSV_HEADER};
