//! Two-layer thermal model for chip multiprocessors (paper Section 7).
//!
//! The paper's future-work section argues that energy-aware scheduling
//! extends naturally to CMPs: "different cores on the same chip can
//! have different temperatures", and migrating between cores of one
//! die is cheaper than between chips. Modelling that requires more
//! than the single RC node of Fig. 2: each core needs its own (small)
//! thermal capacitance, coupled through the die to a shared heat sink:
//!
//! ```text
//! core i:     C_core * dT_i/dt  = P_i - (T_i - T_hs) / R_die
//! heat sink:  C_hs  * dT_hs/dt = sum_i (T_i - T_hs) / R_die
//!                                 - (T_hs - T_ambient) / R_hs
//! ```
//!
//! Core time constants are around a second (small silicon volume),
//! the heat sink's tens of seconds — so a hot task heats *its* core
//! quickly while the others stay cooler, which is exactly the gradient
//! a core-level hot-task migration exploits.

use ebs_units::{Celsius, SimDuration, Watts};

/// Thermal parameters of a multi-core package.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CmpThermalModel {
    /// Die spreading resistance between one core and the heat sink, in
    /// kelvin per watt.
    pub die_resistance_k_per_w: f64,
    /// Thermal capacitance of one core in joules per kelvin.
    pub core_capacitance_j_per_k: f64,
    /// Heat-sink resistance to ambient in kelvin per watt.
    pub sink_resistance_k_per_w: f64,
    /// Heat-sink capacitance in joules per kelvin.
    pub sink_capacitance_j_per_k: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
}

impl CmpThermalModel {
    /// A plausible dual-era part: per-core tau ~1 s, heat-sink tau in
    /// the tens of seconds, sized so a ~60 W package reaches the same
    /// temperatures as the paper-era single-core reference.
    pub fn reference() -> Self {
        CmpThermalModel {
            die_resistance_k_per_w: 0.45,
            core_capacitance_j_per_k: 2.2,
            sink_resistance_k_per_w: 0.30,
            sink_capacitance_j_per_k: 50.0,
            ambient: Celsius::AMBIENT,
        }
    }

    /// Steady-state heat-sink temperature under a total package power.
    pub fn sink_steady_state(&self, total_power: Watts) -> Celsius {
        self.ambient + self.sink_resistance_k_per_w * total_power.0
    }

    /// Steady-state temperature of a core drawing `core_power` while
    /// the whole package draws `total_power`.
    pub fn core_steady_state(&self, core_power: Watts, total_power: Watts) -> Celsius {
        self.sink_steady_state(total_power) + self.die_resistance_k_per_w * core_power.0
    }

    /// The largest steady per-core power that keeps the core at or
    /// below `limit` when the package as a whole draws `total_power`.
    pub fn core_power_budget(&self, limit: Celsius, total_power: Watts) -> Watts {
        let headroom = limit.delta(self.sink_steady_state(total_power));
        Watts((headroom / self.die_resistance_k_per_w).max(0.0))
    }
}

/// The evolving thermal state of one multi-core package.
#[derive(Clone, Debug)]
pub struct CmpThermalNode {
    model: CmpThermalModel,
    core_temps: Vec<Celsius>,
    sink_temp: Celsius,
}

impl CmpThermalNode {
    /// Creates a package with `n_cores` cores, everything at ambient.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn new(model: CmpThermalModel, n_cores: usize) -> Self {
        assert!(n_cores > 0, "a package needs at least one core");
        CmpThermalNode {
            core_temps: vec![model.ambient; n_cores],
            sink_temp: model.ambient,
            model,
        }
    }

    /// The model parameters.
    pub fn model(&self) -> &CmpThermalModel {
        &self.model
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.core_temps.len()
    }

    /// Current temperature of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_temp(&self, core: usize) -> Celsius {
        self.core_temps[core]
    }

    /// Current heat-sink temperature.
    pub fn sink_temp(&self) -> Celsius {
        self.sink_temp
    }

    /// The hottest core right now.
    pub fn max_core_temp(&self) -> Celsius {
        self.core_temps
            .iter()
            .copied()
            .fold(self.model.ambient, Celsius::max)
    }

    /// Advances the package by `dt` under the given per-core powers.
    ///
    /// Integration is semi-implicit Euler with internal sub-stepping
    /// bounded well below the core time constant, so arbitrary `dt`
    /// values are stable.
    ///
    /// # Panics
    ///
    /// Panics if `powers` length differs from the core count.
    pub fn step(&mut self, powers: &[Watts], dt: SimDuration) {
        assert_eq!(powers.len(), self.core_temps.len(), "one power per core");
        if dt.is_zero() {
            return;
        }
        let tau_core = self.model.die_resistance_k_per_w * self.model.core_capacitance_j_per_k;
        // Sub-step at <= tau/10 for accuracy.
        let max_sub = tau_core / 10.0;
        let total = dt.as_secs_f64();
        let n_sub = (total / max_sub).ceil().max(1.0) as usize;
        let h = total / n_sub as f64;
        for _ in 0..n_sub {
            let mut into_sink = 0.0;
            for (temp, power) in self.core_temps.iter_mut().zip(powers) {
                let flow = (temp.0 - self.sink_temp.0) / self.model.die_resistance_k_per_w;
                into_sink += flow;
                let delta = (power.0 - flow) / self.model.core_capacitance_j_per_k * h;
                *temp += delta;
            }
            let out_flow =
                (self.sink_temp.0 - self.model.ambient.0) / self.model.sink_resistance_k_per_w;
            self.sink_temp += (into_sink - out_flow) / self.model.sink_capacitance_j_per_k * h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_steady(node: &mut CmpThermalNode, powers: &[Watts]) {
        for _ in 0..4_000 {
            node.step(powers, SimDuration::from_millis(100));
        }
    }

    #[test]
    fn uniform_load_reaches_analytic_steady_state() {
        let model = CmpThermalModel::reference();
        let mut node = CmpThermalNode::new(model, 4);
        let powers = vec![Watts(15.0); 4];
        run_to_steady(&mut node, &powers);
        let expected = model.core_steady_state(Watts(15.0), Watts(60.0));
        for c in 0..4 {
            assert!(
                (node.core_temp(c).0 - expected.0).abs() < 0.05,
                "core {c}: {:?} vs {expected:?}",
                node.core_temp(c)
            );
        }
        let sink_expected = model.sink_steady_state(Watts(60.0));
        assert!((node.sink_temp().0 - sink_expected.0).abs() < 0.05);
    }

    #[test]
    fn hot_core_runs_hotter_than_its_neighbours() {
        // The Section 7 premise: cores on one chip can have different
        // temperatures.
        let model = CmpThermalModel::reference();
        let mut node = CmpThermalNode::new(model, 4);
        let powers = vec![Watts(45.0), Watts(5.0), Watts(5.0), Watts(5.0)];
        run_to_steady(&mut node, &powers);
        assert!(node.core_temp(0).0 > node.core_temp(1).0 + 10.0);
        // Neighbours still warm up through the shared sink.
        assert!(node.core_temp(1).0 > model.ambient.0 + 5.0);
        // And neighbours are all equal by symmetry.
        assert!((node.core_temp(1).0 - node.core_temp(3).0).abs() < 1e-6);
    }

    #[test]
    fn core_gradient_decays_after_migration() {
        // Move the hot load from core 0 to core 2: the gradient flips
        // within a few core time constants while the sink barely moves.
        let model = CmpThermalModel::reference();
        let mut node = CmpThermalNode::new(model, 4);
        run_to_steady(
            &mut node,
            &[Watts(45.0), Watts(5.0), Watts(5.0), Watts(5.0)],
        );
        let sink_before = node.sink_temp();
        let migrated = vec![Watts(5.0), Watts(5.0), Watts(45.0), Watts(5.0)];
        for _ in 0..50 {
            node.step(&migrated, SimDuration::from_millis(100));
        }
        // 5 s later (5x the core tau) the hot spot moved.
        assert!(node.core_temp(2) > node.core_temp(0));
        // The heat sink, with its much larger capacitance, is nearly
        // unchanged: total power did not change.
        assert!((node.sink_temp().0 - sink_before.0).abs() < 0.5);
    }

    #[test]
    fn sub_stepping_makes_large_steps_agree_with_small_ones() {
        let model = CmpThermalModel::reference();
        let powers = vec![Watts(30.0), Watts(10.0)];
        let mut coarse = CmpThermalNode::new(model, 2);
        coarse.step(&powers, SimDuration::from_secs(10));
        let mut fine = CmpThermalNode::new(model, 2);
        for _ in 0..10_000 {
            fine.step(&powers, SimDuration::from_millis(1));
        }
        for c in 0..2 {
            assert!(
                (coarse.core_temp(c).0 - fine.core_temp(c).0).abs() < 0.05,
                "core {c}: {:?} vs {:?}",
                coarse.core_temp(c),
                fine.core_temp(c)
            );
        }
    }

    #[test]
    fn core_budget_shrinks_with_package_load() {
        let model = CmpThermalModel::reference();
        let lightly = model.core_power_budget(Celsius(60.0), Watts(30.0));
        let heavily = model.core_power_budget(Celsius(60.0), Watts(80.0));
        assert!(lightly > heavily);
        // Saturates at zero when the sink alone exceeds the limit.
        assert_eq!(
            model.core_power_budget(Celsius(25.0), Watts(200.0)),
            Watts::ZERO
        );
    }

    #[test]
    fn zero_dt_is_identity() {
        let model = CmpThermalModel::reference();
        let mut node = CmpThermalNode::new(model, 2);
        let before = node.core_temp(0);
        node.step(&[Watts(50.0), Watts(50.0)], SimDuration::ZERO);
        assert_eq!(node.core_temp(0), before);
    }

    #[test]
    #[should_panic(expected = "one power per core")]
    fn wrong_power_count_rejected() {
        let model = CmpThermalModel::reference();
        let mut node = CmpThermalNode::new(model, 4);
        node.step(&[Watts(10.0)], SimDuration::from_millis(1));
    }
}
