//! Online thermal-model calibration (paper Section 4.2, last
//! paragraph).
//!
//! The evaluation calibrates each CPU's RC model off-line from a
//! heating curve, but the paper notes that "calibration could also be
//! done on-line by simultaneously observing temperature (read from the
//! chip's thermal diode) and power consumption (derived from energy
//! estimation) to account for changes in the cooling system, e.g. the
//! activation or deactivation of additional fans, or changes in the
//! ambient temperature."
//!
//! This module implements that idea. The discretised RC update over a
//! fixed sampling period `d` is linear in two unknowns:
//!
//! ```text
//! T[k+1] = a * T[k] + b * P[k] + c            with
//! a = exp(-d / tau),  b = R * (1 - a),  c = T_amb * (1 - a)
//! ```
//!
//! A recursive least-squares estimator with exponential forgetting
//! tracks `(a, b, c)` from (temperature, power) observations and
//! recovers `tau = -d / ln a`, `R = b / (1 - a)`, and the ambient
//! temperature — adapting within minutes when a fan changes the
//! effective thermal resistance.

use crate::rc_model::RcThermalModel;
use ebs_units::{Celsius, SimDuration, Watts};

/// Recursive least-squares tracker of one CPU's thermal parameters.
#[derive(Clone, Debug)]
pub struct OnlineCalibrator {
    period: SimDuration,
    /// Parameter estimate (a, b, c).
    theta: [f64; 3],
    /// Inverse covariance (3x3, row-major).
    p: [[f64; 3]; 3],
    forgetting: f64,
    last: Option<(Celsius, Watts)>,
    samples: u64,
}

impl OnlineCalibrator {
    /// Creates a calibrator for a fixed sampling period, seeded from a
    /// prior model (e.g. the factory calibration).
    ///
    /// `forgetting` in `(0, 1]` controls adaptation speed: 1 never
    /// forgets; 0.995 adapts within a few hundred samples.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the forgetting factor is out of
    /// range.
    pub fn new(period: SimDuration, prior: &RcThermalModel, forgetting: f64) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        assert!(
            forgetting > 0.0 && forgetting <= 1.0,
            "forgetting factor {forgetting} outside (0, 1]"
        );
        let tau = prior.resistance_k_per_w * prior.capacitance_j_per_k;
        let a = (-period.as_secs_f64() / tau).exp();
        let theta = [
            a,
            prior.resistance_k_per_w * (1.0 - a),
            prior.ambient.0 * (1.0 - a),
        ];
        // A loose prior covariance lets observations take over quickly.
        let mut p = [[0.0; 3]; 3];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        OnlineCalibrator {
            period,
            theta,
            p,
            forgetting,
            last: None,
            samples: 0,
        }
    }

    /// Number of (pairs of) samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Feeds one (temperature, average power over the period) sample.
    pub fn observe(&mut self, temperature: Celsius, power: Watts) {
        let Some((t_prev, p_prev)) = self.last.replace((temperature, power)) else {
            return;
        };
        self.samples += 1;
        // Regressor x = [T[k], P[k], 1], target y = T[k+1].
        let x = [t_prev.0, p_prev.0, 1.0];
        let y = temperature.0;
        // RLS update with forgetting.
        let px = [
            self.p[0][0] * x[0] + self.p[0][1] * x[1] + self.p[0][2] * x[2],
            self.p[1][0] * x[0] + self.p[1][1] * x[1] + self.p[1][2] * x[2],
            self.p[2][0] * x[0] + self.p[2][1] * x[1] + self.p[2][2] * x[2],
        ];
        let denom = self.forgetting + x[0] * px[0] + x[1] * px[1] + x[2] * px[2];
        let k = [px[0] / denom, px[1] / denom, px[2] / denom];
        let err = y - (self.theta[0] * x[0] + self.theta[1] * x[1] + self.theta[2] * x[2]);
        for (t, ki) in self.theta.iter_mut().zip(k) {
            *t += ki * err;
        }
        let mut new_p = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                new_p[i][j] = (self.p[i][j] - k[i] * px[j]) / self.forgetting;
            }
        }
        self.p = new_p;
    }

    /// The current model estimate, if the parameters are physically
    /// meaningful (enough informative samples seen).
    pub fn model(&self) -> Option<RcThermalModel> {
        let a = self.theta[0];
        if !(0.0 < a && a < 1.0) {
            return None;
        }
        let one_minus_a = 1.0 - a;
        let resistance = self.theta[1] / one_minus_a;
        let ambient = self.theta[2] / one_minus_a;
        let tau = -self.period.as_secs_f64() / a.ln();
        if !(resistance.is_finite() && resistance > 0.0 && tau.is_finite() && tau > 0.0) {
            return None;
        }
        Some(RcThermalModel {
            resistance_k_per_w: resistance,
            capacitance_j_per_k: tau / resistance,
            ambient: Celsius(ambient),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc_model::ThermalNode;

    const PERIOD: SimDuration = SimDuration::from_millis(500);

    /// Drives a node with a power schedule and feeds the calibrator.
    fn feed(
        cal: &mut OnlineCalibrator,
        truth: &RcThermalModel,
        schedule: impl Iterator<Item = f64>,
    ) -> ThermalNode {
        let mut node = ThermalNode::new(*truth);
        for p in schedule {
            cal.observe(node.temperature(), Watts(p));
            node.step(Watts(p), PERIOD);
        }
        node
    }

    /// A power schedule with enough excitation to identify the model.
    fn rich_schedule(n: usize) -> impl Iterator<Item = f64> {
        (0..n).map(|i| match (i / 40) % 4 {
            0 => 20.0,
            1 => 65.0,
            2 => 35.0,
            _ => 55.0,
        })
    }

    #[test]
    fn recovers_true_parameters_from_prior_mismatch() {
        let truth = RcThermalModel::reference().with_cooling_factor(1.2);
        // Seed with the *wrong* (reference) prior.
        let mut cal = OnlineCalibrator::new(PERIOD, &RcThermalModel::reference(), 1.0);
        feed(&mut cal, &truth, rich_schedule(2_000));
        let model = cal.model().expect("identified");
        let r_err =
            (model.resistance_k_per_w - truth.resistance_k_per_w).abs() / truth.resistance_k_per_w;
        assert!(r_err < 0.02, "resistance error {r_err}");
        assert!(
            (model.ambient.0 - truth.ambient.0).abs() < 0.5,
            "{:?}",
            model.ambient
        );
        let tau_true = truth.resistance_k_per_w * truth.capacitance_j_per_k;
        let tau_est = model.resistance_k_per_w * model.capacitance_j_per_k;
        assert!(((tau_est - tau_true) / tau_true).abs() < 0.05);
    }

    #[test]
    fn adapts_when_a_fan_turns_off() {
        // Cooling degrades mid-run (fan off: resistance up 30 %); with
        // forgetting the estimate follows.
        let good = RcThermalModel::reference();
        let poor = good.with_cooling_factor(1.3);
        let mut cal = OnlineCalibrator::new(PERIOD, &good, 0.995);
        feed(&mut cal, &good, rich_schedule(1_200));
        let before = cal.model().unwrap().resistance_k_per_w;
        // Continue from the warm state under the degraded model.
        let mut node = ThermalNode::with_temperature(poor, Celsius(30.0));
        for (i, _) in (0..2_400).enumerate() {
            let p = match (i / 40) % 4 {
                0 => 20.0,
                1 => 65.0,
                2 => 35.0,
                _ => 55.0,
            };
            cal.observe(node.temperature(), Watts(p));
            node.step(Watts(p), PERIOD);
        }
        let after = cal.model().unwrap().resistance_k_per_w;
        assert!(
            (after - poor.resistance_k_per_w).abs() < 0.03,
            "did not adapt: {after} vs {}",
            poor.resistance_k_per_w
        );
        assert!(after > before * 1.15, "resistance should have risen");
    }

    #[test]
    fn max_power_budget_tracks_recalibration() {
        // The quantity the scheduler consumes: after adaptation the
        // derived budget matches the new cooling reality.
        let truth = RcThermalModel::reference().with_cooling_factor(0.8);
        let mut cal = OnlineCalibrator::new(PERIOD, &RcThermalModel::reference(), 1.0);
        feed(&mut cal, &truth, rich_schedule(2_000));
        let model = cal.model().unwrap();
        let budget_true = truth.max_power_for_limit(Celsius(38.0));
        let budget_est = model.max_power_for_limit(Celsius(38.0));
        assert!(
            (budget_true.0 - budget_est.0).abs() < 1.0,
            "{budget_true:?} vs {budget_est:?}"
        );
    }

    #[test]
    fn insufficient_excitation_keeps_prior_sanity() {
        // Constant power and temperature: the regression is degenerate,
        // but the calibrator must not produce nonsense.
        let truth = RcThermalModel::reference();
        let mut cal = OnlineCalibrator::new(PERIOD, &truth, 1.0);
        let mut node = ThermalNode::with_temperature(truth, truth.steady_state(Watts(40.0)));
        for _ in 0..200 {
            cal.observe(node.temperature(), Watts(40.0));
            node.step(Watts(40.0), PERIOD);
        }
        if let Some(model) = cal.model() {
            assert!(model.resistance_k_per_w > 0.0);
            assert!(model.resistance_k_per_w < 10.0);
        }
    }

    #[test]
    fn first_sample_is_a_no_op() {
        let truth = RcThermalModel::reference();
        let mut cal = OnlineCalibrator::new(PERIOD, &truth, 1.0);
        cal.observe(Celsius(25.0), Watts(40.0));
        assert_eq!(cal.samples(), 0);
        cal.observe(Celsius(25.5), Watts(40.0));
        assert_eq!(cal.samples(), 1);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_forgetting_rejected() {
        let _ = OnlineCalibrator::new(PERIOD, &RcThermalModel::reference(), 0.0);
    }
}
