//! `hlt`-based bang-bang temperature control (paper Section 6.2).
//!
//! The paper's evaluation throttles a CPU "by executing the hlt
//! instruction" whenever its thermal power rises above the value
//! corresponding to the temperature limit, and lets it run again once
//! the thermal power has fallen below the limit. Throttling is the
//! *penalty* energy-aware scheduling strives to avoid; the controller
//! here is deliberately the same simple mechanism so that the comparison
//! between policies is apples-to-apples.

use ebs_units::{SimDuration, Watts};

/// Whether the CPU is currently allowed to execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThrottleState {
    /// Executing normally.
    Running,
    /// Forced into `hlt`; the CPU consumes only halt power.
    Halted,
}

/// Cumulative throttling statistics for one CPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThrottleStats {
    /// Total time spent throttled.
    pub throttled: SimDuration,
    /// Total time observed (throttled or not).
    pub observed: SimDuration,
    /// Number of Running -> Halted transitions.
    pub engagements: u64,
}

impl ThrottleStats {
    /// Fraction of observed time spent throttled, in `[0, 1]`.
    pub fn throttled_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            0.0
        } else {
            self.throttled.ratio(self.observed)
        }
    }
}

/// Bang-bang throttle controller for one CPU.
///
/// Engages when thermal power reaches `limit`, releases when it has
/// fallen below `limit * (1 - release_margin)`. The margin prevents
/// engage/release chatter at the limit without materially changing the
/// duty cycle (the thermal-power average itself moves slowly).
#[derive(Clone, Copy, Debug)]
pub struct ThrottleController {
    limit: Watts,
    release_margin: f64,
    state: ThrottleState,
    stats: ThrottleStats,
}

impl ThrottleController {
    /// Default release margin: release at 1 % below the limit.
    pub const DEFAULT_RELEASE_MARGIN: f64 = 0.01;

    /// Creates a controller with the default release margin.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not a sane power.
    pub fn new(limit: Watts) -> Self {
        Self::with_release_margin(limit, Self::DEFAULT_RELEASE_MARGIN)
    }

    /// Creates a controller with an explicit release margin in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not a sane power or the margin is out of
    /// range.
    pub fn with_release_margin(limit: Watts, release_margin: f64) -> Self {
        assert!(limit.is_sane(), "throttle limit {limit:?} not sane");
        assert!(
            (0.0..1.0).contains(&release_margin),
            "release margin {release_margin} outside [0, 1)"
        );
        ThrottleController {
            limit,
            release_margin,
            state: ThrottleState::Running,
            stats: ThrottleStats::default(),
        }
    }

    /// The configured limit (the CPU's maximum power).
    pub fn limit(&self) -> Watts {
        self.limit
    }

    /// Replaces the limit, e.g. when an experiment changes the allowed
    /// maximum power at runtime.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not a sane power.
    pub fn set_limit(&mut self, limit: Watts) {
        assert!(limit.is_sane(), "throttle limit {limit:?} not sane");
        self.limit = limit;
    }

    /// The thermal power at which a running CPU engages the throttle.
    pub fn engage_threshold(&self) -> Watts {
        self.limit
    }

    /// The thermal power below which a halted CPU resumes execution.
    pub fn release_threshold(&self) -> Watts {
        self.limit * (1.0 - self.release_margin)
    }

    /// The thermal power at which the *next* observation flips the
    /// state: the engage threshold while running, the release
    /// threshold while halted. Variable-stride engines bound their
    /// step length by the time the thermal average needs to reach this
    /// value.
    pub fn flip_threshold(&self) -> Watts {
        match self.state {
            ThrottleState::Running => self.engage_threshold(),
            ThrottleState::Halted => self.release_threshold(),
        }
    }

    /// Current state.
    pub fn state(&self) -> ThrottleState {
        self.state
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ThrottleStats {
        self.stats
    }

    /// Observes the CPU's thermal power for an interval of length `dt`
    /// and decides the state for the *next* interval.
    pub fn observe(&mut self, thermal_power: Watts, dt: SimDuration) -> ThrottleState {
        self.stats.observed += dt;
        if self.state == ThrottleState::Halted {
            self.stats.throttled += dt;
        }
        match self.state {
            ThrottleState::Running if thermal_power >= self.limit => {
                self.state = ThrottleState::Halted;
                self.stats.engagements += 1;
            }
            ThrottleState::Halted if thermal_power < self.limit * (1.0 - self.release_margin) => {
                self.state = ThrottleState::Running;
            }
            _ => {}
        }
        self.state
    }
}

impl ebs_store::Snapshot for ThrottleController {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The limit is mutable at runtime (`set_limit`), so it is
        // state, not configuration.
        w.watts(self.limit);
        w.bool(matches!(self.state, ThrottleState::Halted));
        w.duration(self.stats.throttled);
        w.duration(self.stats.observed);
        w.u64(self.stats.engagements);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.limit = r.watts()?;
        self.state = if r.bool()? {
            ThrottleState::Halted
        } else {
            ThrottleState::Running
        };
        self.stats.throttled = r.duration()?;
        self.stats.observed = r.duration()?;
        self.stats.engagements = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn stays_running_below_limit() {
        let mut c = ThrottleController::new(Watts(50.0));
        for _ in 0..100 {
            assert_eq!(c.observe(Watts(40.0), TICK), ThrottleState::Running);
        }
        assert_eq!(c.stats().throttled, SimDuration::ZERO);
        assert_eq!(c.stats().engagements, 0);
        assert_eq!(c.stats().observed, SimDuration::from_millis(100));
    }

    #[test]
    fn engages_at_limit_and_releases_below_margin() {
        let mut c = ThrottleController::with_release_margin(Watts(50.0), 0.02);
        assert_eq!(c.observe(Watts(50.0), TICK), ThrottleState::Halted);
        assert_eq!(c.stats().engagements, 1);
        // Just below the limit but inside the margin: stays halted.
        assert_eq!(c.observe(Watts(49.5), TICK), ThrottleState::Halted);
        // Below the release threshold (49.0): resumes.
        assert_eq!(c.observe(Watts(48.9), TICK), ThrottleState::Running);
    }

    #[test]
    fn counts_throttled_time() {
        let mut c = ThrottleController::new(Watts(50.0));
        c.observe(Watts(55.0), TICK); // Engages; this tick was running.
        c.observe(Watts(55.0), TICK); // Throttled tick.
        c.observe(Watts(55.0), TICK); // Throttled tick.
        c.observe(Watts(10.0), TICK); // Throttled tick, then releases.
        c.observe(Watts(10.0), TICK); // Running tick.
        let stats = c.stats();
        assert_eq!(stats.throttled, SimDuration::from_millis(3));
        assert_eq!(stats.observed, SimDuration::from_millis(5));
        assert!((stats.throttled_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_tracks_overshoot() {
        // A synthetic thermal power that rises while running and decays
        // while halted must produce an intermediate duty cycle.
        let mut c = ThrottleController::new(Watts(50.0));
        let mut p = 45.0_f64;
        for _ in 0..20_000 {
            let state = c.observe(Watts(p), TICK);
            p = match state {
                ThrottleState::Running => (p + 0.02).min(70.0),
                ThrottleState::Halted => (p - 0.01).max(13.6),
            };
        }
        let frac = c.stats().throttled_fraction();
        assert!(frac > 0.4 && frac < 0.9, "duty cycle {frac}");
        assert!(c.stats().engagements > 1);
    }

    #[test]
    fn variable_dt_observation_accumulates_like_split_ticks() {
        // The controller's time accounting is linear in `dt`: one 5 ms
        // observation carries the same statistics as five 1 ms ones
        // under a constant thermal power (the state machine only
        // decides at observation ends, which is what a variable-stride
        // engine's step boundaries are).
        let mut coarse = ThrottleController::new(Watts(50.0));
        let mut fine = ThrottleController::new(Watts(50.0));
        coarse.observe(Watts(55.0), SimDuration::from_millis(5));
        for _ in 0..5 {
            fine.observe(Watts(55.0), TICK);
        }
        assert_eq!(coarse.stats().observed, fine.stats().observed);
        assert_eq!(coarse.state(), fine.state());
        // Both engaged exactly once.
        assert_eq!(coarse.stats().engagements, 1);
        // Halted time then accrues with whatever dt is offered.
        coarse.observe(Watts(55.0), SimDuration::from_millis(7));
        assert_eq!(coarse.stats().throttled, SimDuration::from_millis(7));
    }

    #[test]
    fn flip_threshold_follows_state() {
        let mut c = ThrottleController::with_release_margin(Watts(50.0), 0.02);
        assert_eq!(c.engage_threshold(), Watts(50.0));
        assert_eq!(c.release_threshold(), Watts(49.0));
        assert_eq!(c.flip_threshold(), Watts(50.0));
        c.observe(Watts(55.0), TICK);
        assert_eq!(c.state(), ThrottleState::Halted);
        assert_eq!(c.flip_threshold(), Watts(49.0));
    }

    #[test]
    fn empty_observation_fraction_is_zero() {
        let c = ThrottleController::new(Watts(50.0));
        assert_eq!(c.stats().throttled_fraction(), 0.0);
    }

    #[test]
    fn set_limit_applies_immediately() {
        let mut c = ThrottleController::new(Watts(60.0));
        assert_eq!(c.observe(Watts(50.0), TICK), ThrottleState::Running);
        c.set_limit(Watts(40.0));
        assert_eq!(c.limit(), Watts(40.0));
        assert_eq!(c.observe(Watts(50.0), TICK), ThrottleState::Halted);
    }

    #[test]
    #[should_panic(expected = "not sane")]
    fn insane_limit_rejected() {
        let _ = ThrottleController::new(Watts(-5.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn bad_margin_rejected() {
        let _ = ThrottleController::with_release_margin(Watts(50.0), 1.0);
    }
}
