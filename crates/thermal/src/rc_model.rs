//! The RC thermal network of paper Section 4.2 (Fig. 2).
//!
//! One thermal resistor models the heat sink delivering heat to the
//! ambient air; one thermal capacitor models the chip and heat sink
//! storing energy. Driven by a power `P`, the die temperature obeys
//!
//! ```text
//! C * dT/dt = P - (T - T_ambient) / R
//! ```
//!
//! whose solution for piecewise-constant power is an exponential with
//! time constant `tau = R * C` towards the steady state
//! `T_ambient + R * P`. The integration below uses that exact solution,
//! so simulation steps of any length are stable and bit-reproducible.

use ebs_units::{Celsius, SimDuration, Watts};

/// Thermal parameters of one physical processor and its heat sink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RcThermalModel {
    /// Heat-sink thermal resistance in kelvin per watt.
    pub resistance_k_per_w: f64,
    /// Chip + heat-sink thermal capacitance in joules per kelvin.
    pub capacitance_j_per_k: f64,
    /// Ambient air temperature.
    pub ambient: Celsius,
}

impl RcThermalModel {
    /// The reference processor of the simulated testbed: reaches the
    /// paper's 45 degC running the hottest workload (~68 W package
    /// power) from a 22 degC ambient, with a ~15 s time constant.
    pub fn reference() -> Self {
        RcThermalModel {
            resistance_k_per_w: 0.34,
            capacitance_j_per_k: 44.0,
            ambient: Celsius::AMBIENT,
        }
    }

    /// A variant with scaled thermal resistance, for modelling CPUs
    /// closer to or farther from fans and air inlets (Section 4's
    /// motivation for balancing power *ratios*).
    ///
    /// The capacitance is scaled inversely so every CPU keeps the same
    /// time constant; only steady-state cooling differs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn with_cooling_factor(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "cooling factor {factor} must be positive"
        );
        RcThermalModel {
            resistance_k_per_w: self.resistance_k_per_w * factor,
            capacitance_j_per_k: self.capacitance_j_per_k / factor,
            ambient: self.ambient,
        }
    }

    /// The time constant `tau = R * C`.
    pub fn time_constant(&self) -> SimDuration {
        SimDuration::from_micros(
            (self.resistance_k_per_w * self.capacitance_j_per_k * 1e6).round() as u64,
        )
    }

    /// Steady-state temperature under constant power.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        self.ambient + self.resistance_k_per_w * power.0
    }

    /// The *maximum power* of the paper: the largest constant power the
    /// processor sustains without exceeding `limit` — the budget the
    /// scheduling metrics are normalised by.
    pub fn max_power_for_limit(&self, limit: Celsius) -> Watts {
        Watts((limit.delta(self.ambient) / self.resistance_k_per_w).max(0.0))
    }

    /// The temperature that corresponds to a given thermal power in
    /// steady state — the inverse of [`RcThermalModel::max_power_for_limit`].
    pub fn temp_for_power(&self, power: Watts) -> Celsius {
        self.steady_state(power)
    }
}

/// The evolving thermal state of one physical processor.
#[derive(Clone, Copy, Debug)]
pub struct ThermalNode {
    model: RcThermalModel,
    temperature: Celsius,
}

impl ThermalNode {
    /// Creates a node at ambient temperature.
    pub fn new(model: RcThermalModel) -> Self {
        ThermalNode {
            temperature: model.ambient,
            model,
        }
    }

    /// Creates a node at a specific initial temperature.
    pub fn with_temperature(model: RcThermalModel, temperature: Celsius) -> Self {
        ThermalNode { model, temperature }
    }

    /// The node's thermal parameters.
    pub fn model(&self) -> &RcThermalModel {
        &self.model
    }

    /// Current die temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Advances the node by `dt` under constant power, using the exact
    /// exponential solution of the RC network.
    pub fn step(&mut self, power: Watts, dt: SimDuration) -> Celsius {
        debug_assert!(power.is_sane(), "insane power {power:?}");
        if dt.is_zero() {
            return self.temperature;
        }
        let t_inf = self.model.steady_state(power);
        let tau = self.model.resistance_k_per_w * self.model.capacitance_j_per_k;
        let decay = (-dt.as_secs_f64() / tau).exp();
        self.temperature = Celsius(t_inf.0 + (self.temperature.0 - t_inf.0) * decay);
        self.temperature
    }
}

impl ebs_store::Snapshot for ThermalNode {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The RC parameters are configuration; the die temperature is
        // the node's only evolving state.
        w.celsius(self.temperature);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.temperature = r.celsius()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RcThermalModel {
        RcThermalModel::reference()
    }

    #[test]
    fn reference_time_constant() {
        let tau = model().time_constant();
        let secs = tau.as_secs_f64();
        assert!((secs - 14.96).abs() < 0.01, "tau {secs}");
    }

    #[test]
    fn steady_state_matches_paper_testbed() {
        // ~68 W package power should land near the paper's observed
        // 45 degC maximum.
        let t = model().steady_state(Watts(68.0));
        assert!((t.0 - 45.1).abs() < 0.3, "{t:?}");
    }

    #[test]
    fn max_power_inverts_steady_state() {
        let m = model();
        let p = m.max_power_for_limit(Celsius(38.0));
        let t = m.steady_state(p);
        assert!((t.0 - 38.0).abs() < 1e-9);
        // Negative headroom clamps to zero.
        assert_eq!(m.max_power_for_limit(Celsius(10.0)), Watts::ZERO);
    }

    #[test]
    fn step_converges_to_steady_state() {
        let mut node = ThermalNode::new(model());
        for _ in 0..100_000 {
            node.step(Watts(60.0), SimDuration::from_millis(10));
        }
        let expected = model().steady_state(Watts(60.0));
        assert!((node.temperature().0 - expected.0).abs() < 1e-6);
    }

    #[test]
    fn step_is_exact_for_any_step_size() {
        // One big step must equal many small ones (exact exponential).
        let mut coarse = ThermalNode::new(model());
        coarse.step(Watts(50.0), SimDuration::from_secs(10));
        let mut fine = ThermalNode::new(model());
        for _ in 0..10_000 {
            fine.step(Watts(50.0), SimDuration::from_millis(1));
        }
        assert!(
            (coarse.temperature().0 - fine.temperature().0).abs() < 1e-9,
            "{:?} vs {:?}",
            coarse.temperature(),
            fine.temperature()
        );
    }

    #[test]
    fn heating_is_monotone_and_bounded() {
        let mut node = ThermalNode::new(model());
        let mut last = node.temperature();
        let t_inf = model().steady_state(Watts(61.0));
        for _ in 0..1_000 {
            let t = node.step(Watts(61.0), SimDuration::from_millis(100));
            assert!(t >= last, "temperature decreased while heating");
            assert!(t <= t_inf, "temperature overshot steady state");
            last = t;
        }
    }

    #[test]
    fn cooling_returns_to_ambient() {
        let mut node = ThermalNode::with_temperature(model(), Celsius(45.0));
        for _ in 0..100_000 {
            node.step(Watts::ZERO, SimDuration::from_millis(10));
        }
        assert!((node.temperature().0 - model().ambient.0).abs() < 1e-6);
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut node = ThermalNode::with_temperature(model(), Celsius(30.0));
        let t = node.step(Watts(100.0), SimDuration::ZERO);
        assert_eq!(t, Celsius(30.0));
    }

    #[test]
    fn cooling_factor_scales_resistance_keeps_tau() {
        let base = model();
        let poor = base.with_cooling_factor(1.25);
        assert!((poor.resistance_k_per_w - base.resistance_k_per_w * 1.25).abs() < 1e-12);
        assert_eq!(poor.time_constant(), base.time_constant());
        // Poorer cooling -> lower power budget at the same limit.
        assert!(poor.max_power_for_limit(Celsius(38.0)) < base.max_power_for_limit(Celsius(38.0)));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_cooling_factor_rejected() {
        let _ = model().with_cooling_factor(0.0);
    }
}
