//! Thermal modelling for energy-aware scheduling.
//!
//! The paper couples its scheduler to a simple thermal model (Section
//! 4.2, Fig. 2): one thermal resistor (heat sink to ambient) and one
//! thermal capacitor (chip + heat sink mass), yielding exponential
//! temperature responses. On top of the physical model, the scheduler
//! works with *thermal power* (Section 4.3): an exponentially weighted
//! moving average of estimated power whose weight is calibrated to the
//! RC time constant, so that it tracks temperature while keeping the
//! dimension of a power.
//!
//! This crate provides:
//!
//! - [`ExpAverage`] / [`PowerAverage`]: the variable-period exponential
//!   average of Eq. 2, supporting arbitrary sampling intervals (a task
//!   "may block any time").
//! - [`RcThermalModel`] / [`ThermalNode`]: the RC network with exact
//!   exponential integration, per-CPU heterogeneous cooling, and the
//!   derived *maximum power* of a CPU.
//! - [`calibrate`]: fitting R and the time constant from a recorded
//!   heating curve, mirroring the paper's off-line calibration.
//! - [`ThrottleController`]: the `hlt`-based bang-bang temperature
//!   control used in the evaluation (Section 6.2).

mod expavg;
mod rc_model;
mod throttle;

pub mod calibrate;
pub mod cmp;
pub mod online;

pub use cmp::{CmpThermalModel, CmpThermalNode};
pub use expavg::{ExpAverage, PowerAverage};
pub use online::OnlineCalibrator;
pub use rc_model::{RcThermalModel, ThermalNode};
pub use throttle::{ThrottleController, ThrottleState, ThrottleStats};
