//! Fitting the RC model to an observed heating curve.
//!
//! The paper calibrates its thermal model per CPU by "starting a task
//! producing a maximum of heat on a processor formerly idle, recording
//! the temperature values over time and fitting an exponential function
//! to the experimental data" (Section 4.2). This module performs that
//! fit.
//!
//! For a constant heating power `P` starting from ambient, the RC
//! response is
//!
//! ```text
//! T(t) = T_amb + R * P * (1 - exp(-t / tau))
//! ```
//!
//! Three equally spaced samples `T(t0)`, `T(t0 + d)`, `T(t0 + 2d)` obey
//! `(T3 - T2) / (T2 - T1) = exp(-d / tau)` regardless of `t0`, which
//! gives `tau` directly; the asymptote (and hence `R`) follows. The
//! estimator averages the ratio over the whole trace for robustness to
//! sensor noise.

use crate::rc_model::RcThermalModel;
use ebs_units::{Celsius, SimDuration, Watts};

/// A recorded heating experiment: temperature samples at a fixed period
/// under constant known power.
#[derive(Clone, Debug)]
pub struct HeatingTrace {
    /// Sampling period between consecutive samples.
    pub period: SimDuration,
    /// Temperature readings, starting at (or near) ambient.
    pub samples: Vec<Celsius>,
    /// The constant package power applied during the experiment.
    pub power: Watts,
    /// Ambient temperature during the experiment.
    pub ambient: Celsius,
}

/// Errors from curve fitting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than three samples, or a zero sampling period.
    TooShort,
    /// The trace shows no usable heating (already at steady state, zero
    /// power, or dominated by noise).
    NoHeating,
}

impl core::fmt::Display for FitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FitError::TooShort => write!(f, "heating trace has too few samples"),
            FitError::NoHeating => write!(f, "heating trace shows no exponential rise"),
        }
    }
}

impl std::error::Error for FitError {}

/// The result of fitting an RC model to a heating trace.
#[derive(Clone, Copy, Debug)]
pub struct FittedThermal {
    /// The recovered model.
    pub model: RcThermalModel,
    /// Root-mean-square temperature residual of the fit in kelvin.
    pub rms_residual_k: f64,
}

/// Fits an [`RcThermalModel`] to a heating trace.
///
/// # Errors
///
/// Returns [`FitError::TooShort`] for traces with fewer than three
/// samples or a zero period, and [`FitError::NoHeating`] when no
/// exponential rise is detectable.
pub fn fit_heating_curve(trace: &HeatingTrace) -> Result<FittedThermal, FitError> {
    let n = trace.samples.len();
    if n < 3 || trace.period.is_zero() {
        return Err(FitError::TooShort);
    }
    if trace.power.0 <= 0.0 {
        return Err(FitError::NoHeating);
    }
    let d = trace.period.as_secs_f64();

    // Average the consecutive-difference ratio over the trace. Weight
    // each ratio by the magnitude of its denominator so the flat tail
    // (where differences vanish into noise) does not dominate.
    let mut num = 0.0;
    let mut den = 0.0;
    for w in trace.samples.windows(3) {
        let d1 = w[1].delta(w[0]);
        let d2 = w[2].delta(w[1]);
        if d1 > 0.0 {
            num += d2 * d1;
            den += d1 * d1;
        }
    }
    if den == 0.0 {
        return Err(FitError::NoHeating);
    }
    let ratio = num / den;
    if !(ratio > 0.0 && ratio < 1.0) {
        return Err(FitError::NoHeating);
    }
    let tau = -d / ratio.ln();

    // With tau known the model is linear in the asymptote: fit the
    // steady-state temperature by least squares over
    // T_i = T_ss - (T_ss - T_0) * exp(-t_i / tau).
    let t0 = trace.samples[0].0;
    let mut sum_xx = 0.0;
    let mut sum_xy = 0.0;
    for (i, s) in trace.samples.iter().enumerate() {
        // x_i = 1 - exp(-t_i / tau); T_i - T_0 = (T_ss - T_0) * x_i.
        let x = 1.0 - (-(i as f64) * d / tau).exp();
        sum_xx += x * x;
        sum_xy += x * (s.0 - t0);
    }
    if sum_xx == 0.0 {
        return Err(FitError::NoHeating);
    }
    let rise = sum_xy / sum_xx;
    if rise <= 0.0 {
        return Err(FitError::NoHeating);
    }
    let t_ss = t0 + rise;

    let resistance = (t_ss - trace.ambient.0) / trace.power.0;
    if resistance <= 0.0 || !resistance.is_finite() {
        return Err(FitError::NoHeating);
    }
    let capacitance = tau / resistance;
    let model = RcThermalModel {
        resistance_k_per_w: resistance,
        capacitance_j_per_k: capacitance,
        ambient: trace.ambient,
    };

    // Residual of the fitted curve against the samples.
    let mut sq = 0.0;
    for (i, s) in trace.samples.iter().enumerate() {
        let x = 1.0 - (-(i as f64) * d / tau).exp();
        let predicted = t0 + rise * x;
        sq += (s.0 - predicted) * (s.0 - predicted);
    }
    Ok(FittedThermal {
        model,
        rms_residual_k: (sq / n as f64).sqrt(),
    })
}

/// Records a synthetic heating trace from a known model, optionally with
/// additive sensor noise supplied by the caller (one value per sample).
///
/// # Panics
///
/// Panics if `noise` is non-empty and shorter than `samples`.
pub fn record_trace(
    model: &RcThermalModel,
    power: Watts,
    period: SimDuration,
    samples: usize,
    noise: &[f64],
) -> HeatingTrace {
    assert!(
        noise.is_empty() || noise.len() >= samples,
        "noise vector shorter than trace"
    );
    let mut node = crate::rc_model::ThermalNode::new(*model);
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        let jitter = if noise.is_empty() { 0.0 } else { noise[i] };
        out.push(node.temperature() + jitter);
        node.step(power, period);
    }
    HeatingTrace {
        period,
        samples: out,
        power,
        ambient: model.ambient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> RcThermalModel {
        RcThermalModel::reference()
    }

    #[test]
    fn clean_trace_recovers_model() {
        let truth = reference();
        let trace = record_trace(&truth, Watts(68.0), SimDuration::from_millis(500), 120, &[]);
        let fit = fit_heating_curve(&trace).unwrap();
        let r_err =
            (fit.model.resistance_k_per_w - truth.resistance_k_per_w) / truth.resistance_k_per_w;
        let tau_true = truth.resistance_k_per_w * truth.capacitance_j_per_k;
        let tau_fit = fit.model.resistance_k_per_w * fit.model.capacitance_j_per_k;
        assert!(r_err.abs() < 0.01, "resistance error {r_err}");
        assert!(((tau_fit - tau_true) / tau_true).abs() < 0.01);
        assert!(fit.rms_residual_k < 1e-6);
    }

    #[test]
    fn recovers_heterogeneous_cooling() {
        for factor in [0.7, 0.9, 1.1, 1.3] {
            let truth = reference().with_cooling_factor(factor);
            let trace = record_trace(&truth, Watts(60.0), SimDuration::from_millis(500), 150, &[]);
            let fit = fit_heating_curve(&trace).unwrap();
            let err = (fit.model.resistance_k_per_w - truth.resistance_k_per_w).abs()
                / truth.resistance_k_per_w;
            assert!(err < 0.02, "factor {factor}: resistance error {err}");
        }
    }

    #[test]
    fn noisy_trace_still_close() {
        let truth = reference();
        // Deterministic pseudo-noise, +-0.05 K (thermal diodes quantise
        // around 1 K; we sample the *model*, which has no quantisation,
        // so this stands in for readout jitter).
        let noise: Vec<f64> = (0..240)
            .map(|i| 0.05 * ((i * 2_654_435_761_u64 % 1000) as f64 / 500.0 - 1.0))
            .collect();
        let trace = record_trace(
            &truth,
            Watts(68.0),
            SimDuration::from_millis(500),
            240,
            &noise,
        );
        let fit = fit_heating_curve(&trace).unwrap();
        let err = (fit.model.resistance_k_per_w - truth.resistance_k_per_w).abs()
            / truth.resistance_k_per_w;
        assert!(err < 0.10, "resistance error {err}");
    }

    #[test]
    fn max_power_round_trip_through_fit() {
        // The quantity the scheduler actually consumes is max power at
        // the throttling limit; it must survive the fit accurately.
        let truth = reference();
        let trace = record_trace(&truth, Watts(68.0), SimDuration::from_millis(200), 400, &[]);
        let fit = fit_heating_curve(&trace).unwrap();
        let truth_budget = truth.max_power_for_limit(Celsius(38.0));
        let fit_budget = fit.model.max_power_for_limit(Celsius(38.0));
        assert!(
            (truth_budget.0 - fit_budget.0).abs() < 0.5,
            "{truth_budget:?} vs {fit_budget:?}"
        );
    }

    #[test]
    fn short_trace_rejected() {
        let trace = HeatingTrace {
            period: SimDuration::from_millis(500),
            samples: vec![Celsius(22.0), Celsius(23.0)],
            power: Watts(60.0),
            ambient: Celsius(22.0),
        };
        assert!(matches!(fit_heating_curve(&trace), Err(FitError::TooShort)));
    }

    #[test]
    fn flat_trace_rejected() {
        let trace = HeatingTrace {
            period: SimDuration::from_millis(500),
            samples: vec![Celsius(22.0); 50],
            power: Watts(60.0),
            ambient: Celsius(22.0),
        };
        assert!(matches!(
            fit_heating_curve(&trace),
            Err(FitError::NoHeating)
        ));
    }

    #[test]
    fn zero_power_rejected() {
        let truth = reference();
        let trace = record_trace(&truth, Watts::ZERO, SimDuration::from_millis(500), 50, &[]);
        assert!(matches!(
            fit_heating_curve(&trace),
            Err(FitError::NoHeating)
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            FitError::TooShort.to_string(),
            "heating trace has too few samples"
        );
        assert_eq!(
            FitError::NoHeating.to_string(),
            "heating trace shows no exponential rise"
        );
    }
}
