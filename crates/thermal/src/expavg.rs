//! Variable-period exponentially weighted moving averages (paper Eq. 2).
//!
//! The classic exponential average assumes samples arrive at a constant
//! period. Tasks do not cooperate: they block mid-timeslice, get
//! preempted, or run extra-long slices. The paper extends the algorithm
//! to *variable periods* by adjusting the weight: if the sampling period
//! is shorter than the standard timeslice the past gets a bigger weight
//! (the average is recalculated more often), if it is longer the past
//! gets a smaller weight.
//!
//! With standard weight `p` over standard period `D`, a period of length
//! `d` uses the effective weight
//!
//! ```text
//! p_eff = 1 - (1 - p)^(d / D)
//! ```
//!
//! which makes the decay of old information depend only on *elapsed
//! time*, not on how that time was chopped into samples.

use ebs_units::{SimDuration, Watts};

/// A variable-period exponential average over `f64` samples.
#[derive(Clone, Copy, Debug)]
pub struct ExpAverage {
    value: f64,
    standard_period: SimDuration,
    /// Weight applied to a sample spanning exactly one standard period.
    standard_weight: f64,
}

impl ExpAverage {
    /// Creates an average with the given standard period and weight and
    /// an initial value.
    ///
    /// # Panics
    ///
    /// Panics if the weight is outside `(0, 1]` or the period is zero.
    pub fn new(initial: f64, standard_period: SimDuration, standard_weight: f64) -> Self {
        assert!(
            standard_weight > 0.0 && standard_weight <= 1.0,
            "standard weight {standard_weight} outside (0, 1]"
        );
        assert!(
            !standard_period.is_zero(),
            "standard period must be positive"
        );
        ExpAverage {
            value: initial,
            standard_period,
            standard_weight,
        }
    }

    /// Creates an average whose step response mimics a first-order
    /// system with time constant `tau`: the weight for one standard
    /// period is `1 - exp(-D / tau)`.
    ///
    /// This is the calibration the paper applies to *thermal power* so
    /// that its course follows the RC model's temperature.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or the period is zero.
    pub fn with_time_constant(
        initial: f64,
        standard_period: SimDuration,
        tau: SimDuration,
    ) -> Self {
        assert!(!tau.is_zero(), "time constant must be positive");
        let weight = 1.0 - (-standard_period.ratio(tau)).exp();
        ExpAverage::new(initial, standard_period, weight)
    }

    /// The current average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The weight that a sample spanning `period` receives.
    pub fn effective_weight(&self, period: SimDuration) -> f64 {
        let exponent = period.ratio(self.standard_period);
        1.0 - (1.0 - self.standard_weight).powf(exponent)
    }

    /// Folds in a sample averaged over `period` (Eq. 2 with the
    /// variable weight). A zero-length period leaves the average
    /// untouched.
    pub fn update(&mut self, sample: f64, period: SimDuration) -> f64 {
        if period.is_zero() {
            return self.value;
        }
        let p = self.effective_weight(period);
        self.value = p * sample + (1.0 - p) * self.value;
        self.value
    }

    /// Resets the average to a fixed value (used when a task's profile
    /// is seeded from the initial-placement table).
    pub fn reset(&mut self, value: f64) {
        self.value = value;
    }
}

/// An exponential average over power samples; the type used for both
/// task energy profiles and per-CPU thermal power.
#[derive(Clone, Copy, Debug)]
pub struct PowerAverage(ExpAverage);

impl PowerAverage {
    /// Creates a power average with standard period and weight.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExpAverage::new`].
    pub fn new(initial: Watts, standard_period: SimDuration, standard_weight: f64) -> Self {
        PowerAverage(ExpAverage::new(initial.0, standard_period, standard_weight))
    }

    /// Creates a power average tracking a first-order system with time
    /// constant `tau`; see [`ExpAverage::with_time_constant`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ExpAverage::with_time_constant`].
    pub fn with_time_constant(
        initial: Watts,
        standard_period: SimDuration,
        tau: SimDuration,
    ) -> Self {
        PowerAverage(ExpAverage::with_time_constant(
            initial.0,
            standard_period,
            tau,
        ))
    }

    /// The current average power.
    pub fn watts(&self) -> Watts {
        Watts(self.0.value())
    }

    /// Folds in a power sample observed over `period`.
    pub fn update(&mut self, sample: Watts, period: SimDuration) -> Watts {
        Watts(self.0.update(sample.0, period))
    }

    /// Resets to a fixed power.
    pub fn reset(&mut self, value: Watts) {
        self.0.reset(value.0)
    }

    /// The weight that a sample spanning `period` receives.
    pub fn effective_weight(&self, period: SimDuration) -> f64 {
        self.0.effective_weight(period)
    }
}

impl ebs_store::Snapshot for ExpAverage {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The period and weight are configuration; only the evolving
        // average travels.
        w.f64(self.value);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.value = r.f64()?;
        Ok(())
    }
}

impl ebs_store::Snapshot for PowerAverage {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        self.0.save(w);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.0.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS100: SimDuration = SimDuration::from_millis(100);

    #[test]
    fn standard_period_uses_standard_weight() {
        let mut avg = ExpAverage::new(0.0, MS100, 0.25);
        assert!((avg.effective_weight(MS100) - 0.25).abs() < 1e-12);
        avg.update(1.0, MS100);
        assert!((avg.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shorter_period_weights_past_more() {
        let avg = ExpAverage::new(0.0, MS100, 0.25);
        let short = avg.effective_weight(SimDuration::from_millis(10));
        assert!(short < 0.25, "short-period weight {short} not smaller");
        let long = avg.effective_weight(SimDuration::from_millis(500));
        assert!(long > 0.25, "long-period weight {long} not larger");
    }

    #[test]
    fn split_period_equals_single_update() {
        // Updating with the same constant sample over two half-periods
        // must decay the past exactly as much as one full-period update:
        // that is the whole point of the variable weight.
        let mut whole = ExpAverage::new(10.0, MS100, 0.3);
        whole.update(2.0, MS100);

        let mut split = ExpAverage::new(10.0, MS100, 0.3);
        split.update(2.0, SimDuration::from_millis(60));
        split.update(2.0, SimDuration::from_millis(40));

        assert!(
            (whole.value() - split.value()).abs() < 1e-9,
            "{} vs {}",
            whole.value(),
            split.value()
        );
    }

    #[test]
    fn converges_to_constant_input() {
        let mut avg = ExpAverage::new(0.0, MS100, 0.1);
        for _ in 0..400 {
            avg.update(55.0, MS100);
        }
        assert!((avg.value() - 55.0).abs() < 1e-6);
    }

    #[test]
    fn zero_period_is_a_no_op() {
        let mut avg = ExpAverage::new(5.0, MS100, 0.5);
        avg.update(100.0, SimDuration::ZERO);
        assert_eq!(avg.value(), 5.0);
    }

    #[test]
    fn time_constant_calibration_matches_rc_step() {
        // With weight 1 - exp(-D / tau), feeding a constant power step
        // must trace the same exponential as a first-order system.
        let tau = SimDuration::from_secs(15);
        let mut avg = ExpAverage::with_time_constant(0.0, MS100, tau);
        let mut t = 0u64;
        for _ in 0..150 {
            avg.update(60.0, MS100);
            t += 100_000;
        }
        let elapsed = t as f64 / 1e6;
        let expected = 60.0 * (1.0 - (-elapsed / 15.0).exp());
        assert!(
            (avg.value() - expected).abs() < 1e-6,
            "avg {} expected {expected}",
            avg.value()
        );
    }

    #[test]
    fn weight_one_tracks_sample_exactly() {
        let mut avg = ExpAverage::new(3.0, MS100, 1.0);
        avg.update(9.0, MS100);
        assert_eq!(avg.value(), 9.0);
        // Weight 1 means "no memory" at every granularity: the decay
        // base (1 - p) is zero, so any positive period yields weight 1.
        let w = avg.effective_weight(SimDuration::from_millis(1));
        assert_eq!(w, 1.0);
    }

    #[test]
    fn reset_overrides_history() {
        let mut avg = ExpAverage::new(3.0, MS100, 0.5);
        avg.update(100.0, MS100);
        avg.reset(7.0);
        assert_eq!(avg.value(), 7.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_weight_rejected() {
        let _ = ExpAverage::new(0.0, MS100, 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = ExpAverage::new(0.0, SimDuration::ZERO, 0.5);
    }

    #[test]
    fn power_average_wrapper_round_trips() {
        let mut avg = PowerAverage::new(Watts(13.6), MS100, 0.2);
        let v = avg.update(Watts(61.0), MS100);
        assert!((v.0 - (0.2 * 61.0 + 0.8 * 13.6)).abs() < 1e-12);
        assert_eq!(avg.watts(), v);
        avg.reset(Watts(40.0));
        assert_eq!(avg.watts(), Watts(40.0));
        assert!((avg.effective_weight(MS100) - 0.2).abs() < 1e-12);
    }
}
