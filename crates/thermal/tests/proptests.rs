//! Property-based tests for the thermal substrate.

use ebs_thermal::{calibrate, ExpAverage, RcThermalModel, ThermalNode, ThrottleController};
use ebs_units::{Celsius, SimDuration, Watts};
use proptest::prelude::*;

proptest! {
    /// The exponential average is a convex combination: it always lies
    /// between its previous value and the sample.
    #[test]
    fn expavg_stays_between_past_and_sample(
        initial in -100.0f64..100.0,
        samples in prop::collection::vec((-100.0f64..100.0, 1u64..400), 1..40),
        weight in 0.01f64..1.0,
    ) {
        let mut avg = ExpAverage::new(initial, SimDuration::from_millis(100), weight);
        for (sample, ms) in samples {
            let before = avg.value();
            let after = avg.update(sample, SimDuration::from_millis(ms));
            let lo = before.min(sample) - 1e-9;
            let hi = before.max(sample) + 1e-9;
            prop_assert!(after >= lo && after <= hi, "{after} outside [{lo}, {hi}]");
        }
    }

    /// Longer sampling periods always weigh the sample more.
    #[test]
    fn effective_weight_is_monotone_in_period(
        weight in 0.01f64..0.99,
        a_ms in 1u64..1_000,
        b_ms in 1u64..1_000,
    ) {
        let avg = ExpAverage::new(0.0, SimDuration::from_millis(100), weight);
        let wa = avg.effective_weight(SimDuration::from_millis(a_ms));
        let wb = avg.effective_weight(SimDuration::from_millis(b_ms));
        if a_ms < b_ms {
            prop_assert!(wa <= wb + 1e-12);
        }
        prop_assert!((0.0..=1.0).contains(&wa));
    }

    /// Steady state of the RC model is exact: after many time
    /// constants, the temperature equals `ambient + R * P`.
    #[test]
    fn rc_converges_to_steady_state(
        power in 0.0f64..120.0,
        factor in 0.5f64..1.5,
    ) {
        let model = RcThermalModel::reference().with_cooling_factor(factor);
        let mut node = ThermalNode::new(model);
        node.step(Watts(power), SimDuration::from_secs(1_000));
        let expected = model.steady_state(Watts(power));
        prop_assert!((node.temperature().0 - expected.0).abs() < 1e-6);
    }

    /// Heating-curve fitting recovers max power at the limit within a
    /// watt for any plausible cooling factor and heating power.
    #[test]
    fn curve_fit_recovers_power_budget(
        factor in 0.6f64..1.4,
        power in 40.0f64..90.0,
    ) {
        let truth = RcThermalModel::reference().with_cooling_factor(factor);
        let trace = calibrate::record_trace(
            &truth,
            Watts(power),
            SimDuration::from_millis(500),
            160,
            &[],
        );
        let fit = calibrate::fit_heating_curve(&trace).unwrap();
        let budget_true = truth.max_power_for_limit(Celsius(38.0));
        let budget_fit = fit.model.max_power_for_limit(Celsius(38.0));
        prop_assert!(
            (budget_true.0 - budget_fit.0).abs() < 1.0,
            "{budget_true:?} vs {budget_fit:?}"
        );
    }

    /// The throttle controller's accounting is exact: observed time
    /// equals the sum of inputs, and the throttled share never exceeds
    /// the observed time.
    #[test]
    fn throttle_accounting_is_exact(
        limit in 10.0f64..80.0,
        powers in prop::collection::vec(0.0f64..100.0, 1..200),
    ) {
        let mut ctl = ThrottleController::new(Watts(limit));
        let dt = SimDuration::from_millis(1);
        for &p in &powers {
            ctl.observe(Watts(p), dt);
        }
        let stats = ctl.stats();
        prop_assert_eq!(stats.observed, SimDuration::from_millis(powers.len() as u64));
        prop_assert!(stats.throttled <= stats.observed);
        let frac = stats.throttled_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }
}
