//! Scenario-engine demo: a machine the paper never had (16 dual-core
//! packages across 4 NUMA nodes) serving an *open* workload — Poisson
//! task arrivals under a diurnal load curve — with energy-aware
//! scheduling and thermal-aware DVFS enforcing a package budget.
//!
//! ```sh
//! cargo run --release --example open_workload
//! ```

use ebs::dvfs::GovernorKind;
use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::topology::TopologyPreset;
use ebs::units::{SimDuration, Watts};
use ebs::workloads::{catalog, LoadCurve, OpenWorkload};

fn main() {
    let shape = TopologyPreset::Numa16.builder();
    let workload = OpenWorkload::new(
        vec![catalog::bitcnts(), catalog::memrw(), catalog::aluadd()],
        0.8 * shape.n_cpus() as f64, // Arrivals per second at factor 1.
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(20),
        floor: 0.25,
    })
    .service_work(600_000_000, 1_800_000_000);

    let cfg = SimConfig::with_topology(shape)
        .seed(42)
        .respawn(false)
        .energy_aware(true)
        .throttling(false)
        .dvfs_governor(GovernorKind::ThermalAware)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .open_workload(workload);

    let mut sim = Simulation::new(cfg);
    sim.run_for(SimDuration::from_secs(40));
    let r = sim.report();

    println!(
        "machine: {} packages / {} CPUs across {} nodes",
        shape.n_packages(),
        shape.n_cpus(),
        shape.n_nodes()
    );
    println!(
        "traffic: {} arrived, {} completed over {:.0} s (two diurnal cycles)",
        r.arrivals,
        r.completions,
        r.duration.as_secs_f64()
    );
    println!(
        "throughput {:.1} Ginstr/s, {:.1} nJ/instr, {} migrations, mean clock {:.2} GHz",
        r.throughput_ips / 1e9,
        r.nj_per_instruction(),
        r.migrations,
        r.mean_frequency.as_ghz()
    );
    println!(
        "latency: p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms",
        r.latency.p50_s * 1e3,
        r.latency.p95_s * 1e3,
        r.latency.p99_s * 1e3
    );
    for (phase, stats) in &r.phase_latencies {
        println!(
            "  {phase:>7}: {} done, p95 {:.0} ms",
            stats.count,
            stats.p95_s * 1e3
        );
    }
}
