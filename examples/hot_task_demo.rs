//! Watch a single hot task wander across the machine (the paper's
//! Figure 9, live).
//!
//! One bitcnts instance burns ~61 W; every package is budgeted at
//! 40 W. Just before a package would have to throttle, the scheduler
//! moves the task to the coolest processor — never to the SMT sibling
//! (same package, same heat) and never across the NUMA boundary (a
//! same-node processor has always cooled down by then).
//!
//! ```sh
//! cargo run --release --example hot_task_demo
//! ```

use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::topology::Topology;
use ebs::units::{SimDuration, Watts};
use ebs::workloads::catalog;

fn main() {
    let cfg = SimConfig::xseries445()
        .smt(true)
        .energy_aware(true)
        .throttling(true)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .trace_task_cpu(true)
        .seed(3);
    let mut sim = Simulation::new(cfg);
    let id = sim.spawn_program(&catalog::bitcnts());
    sim.run_for(SimDuration::from_secs(150));

    let topo = Topology::xseries445(true);
    let visits = sim.task_trace().visits(id);
    println!("single bitcnts (~61 W) under a 40 W package budget:\n");
    println!("{:>8} {:>6} {:>8} {:>6}", "time", "cpu", "package", "node");
    for (t, cpu) in &visits {
        println!(
            "{:>8} {:>6} {:>8} {:>6}",
            format!("{:.1}s", t.as_secs_f64()),
            format!("cpu{}", cpu.0),
            format!("pkg{}", topo.package_of(*cpu).0),
            format!("n{}", topo.node_of(*cpu).0),
        );
    }
    let hops = visits.len().saturating_sub(1);
    let report = sim.report();
    println!(
        "\n{hops} migrations in 150 s, throttled {:.1}% of the time",
        report.avg_throttled_fraction * 100.0
    );
    println!("(without hot task migration the package would throttle ~50% of the time)");
}
