//! SMT-aware energy balancing (the paper's Section 4.7).
//!
//! With hyperthreading, two logical CPUs share one package's power
//! budget. Moving a hot task between siblings cannot cool the package,
//! so the energy balancer skips the sibling domain; only the package
//! *sum* matters. This example loads two packages asymmetrically and
//! shows the balancer levelling package power — not sibling power.
//!
//! ```sh
//! cargo run --release --example smt_balance
//! ```

use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::topology::{CpuId, PackageId, Topology};
use ebs::units::{SimDuration, Watts};
use ebs::workloads::catalog;

fn package_summary(sim: &Simulation, topo: &Topology) {
    println!(
        "{:>8} {:>18} {:>14} {:>10}",
        "package", "thermal sum", "temperature", "tasks"
    );
    for p in 0..topo.n_packages() {
        let pkg = PackageId(p);
        let cpus = topo.cpus_of_package(pkg);
        let sum: Watts = cpus
            .iter()
            .map(|&c| sim.power_state().thermal_power(c))
            .sum();
        let tasks: usize = cpus.iter().map(|&c| sim.system().nr_running(c)).sum();
        if tasks > 0 || sum.0 > 15.0 {
            println!(
                "{:>8} {:>18} {:>14} {:>10}",
                format!("pkg{p}"),
                format!("{sum}"),
                format!("{}", sim.machine().package_temp(pkg)),
                tasks
            );
        }
    }
}

fn main() {
    let cfg = SimConfig::xseries445()
        .smt(true)
        .energy_aware(true)
        .throttling(false)
        .max_power(MaxPowerSpec::PerPackage(Watts(120.0)))
        .seed(5);
    let mut sim = Simulation::new(cfg);
    let topo = Topology::xseries445(true);

    // Load: sixteen hot and sixteen cool tasks — two per logical CPU,
    // so every runqueue holds multiple tasks and energy *balancing*
    // applies (with one task per CPU only hot task *migration* could
    // act, as Section 4 explains).
    for _ in 0..16 {
        sim.spawn_program(&catalog::bitcnts());
        sim.spawn_program(&catalog::memrw());
    }

    println!("after 10 s (profiles still settling):");
    sim.run_for(SimDuration::from_secs(10));
    package_summary(&sim, &topo);

    println!("\nafter 300 s (energy-balanced):");
    sim.run_for(SimDuration::from_secs(290));
    package_summary(&sim, &topo);

    // Show that sibling pairs were never balanced against each other:
    // the scheduler-domain flag suppressed the energy step at the SMT
    // level.
    let smt_domain = &topo.domains(CpuId(0))[0];
    println!(
        "\nSMT domain share_cpu_power flag: {} (energy step skipped there)",
        smt_domain.flags().share_cpu_power
    );
    println!(
        "total migrations: {} (energy {}, exchange {})",
        sim.report().migrations,
        sim.report().migrations_by_reason[1],
        sim.report().migrations_by_reason[3],
    );
}
