//! Quickstart: run the paper's mixed workload on the simulated
//! 8-way machine and print what energy-aware scheduling did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::topology::CpuId;
use ebs::units::{SimDuration, Watts};
use ebs::workloads::section61_mix;

fn main() {
    // The paper's Section 6.1 setup: SMT off, every CPU budgeted at
    // 60 W, 18 tasks (three instances of each Table 2 program).
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(true)
        .throttling(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(60.0)))
        .seed(42);
    let mut sim = Simulation::new(cfg);
    sim.spawn_mix(&section61_mix(), 3);

    println!("running 18 tasks for 300 simulated seconds...");
    sim.run_for(SimDuration::from_secs(300));

    let report = sim.report();
    println!("\nper-CPU state after 300 s:");
    println!(
        "{:>5} {:>10} {:>14} {:>12}",
        "cpu", "tasks", "thermal power", "rq power"
    );
    for c in 0..8 {
        let cpu = CpuId(c);
        println!(
            "{:>5} {:>10} {:>14} {:>12}",
            format!("cpu{c}"),
            sim.system().nr_running(cpu),
            format!("{}", sim.power_state().thermal_power(cpu)),
            format!(
                "{}",
                ebs::core::runqueue_power(sim.system(), cpu, Watts(13.6))
            ),
        );
    }
    println!(
        "\nmigrations: {} (load {}, energy {}, hot-task {}, exchange {})",
        report.migrations,
        report.migrations_by_reason[0],
        report.migrations_by_reason[1],
        report.migrations_by_reason[2],
        report.migrations_by_reason[3],
    );
    println!(
        "instructions retired: {:.2e} ({:.2e}/s)",
        report.instructions_retired as f64, report.throughput_ips
    );
    println!("hottest package: {}", report.max_package_temp);
}
