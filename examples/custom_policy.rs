//! Building a custom scheduling policy from the library's parts.
//!
//! The crates compose: `ebs-sched` provides the runqueues and
//! migration machinery, `ebs-core` the power metrics. This example
//! implements a deliberately naive "greedy coolest-CPU" rebalancer in
//! ~30 lines and compares its migration churn against the paper's
//! hysteresis-guarded balancer on the same synthetic load — the
//! ping-pong effect of Section 4.3, reproduced in miniature.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use ebs::core::{runqueue_power, runqueue_power_ratio, PowerState, PowerStateConfig};
use ebs::core::{EnergyAwareBalancer, EnergyBalanceConfig};
use ebs::sched::{MigrationReason, System, TaskConfig};
use ebs::topology::{CpuId, Topology};
use ebs::units::{SimDuration, SimTime, Watts};

/// A naive policy: every pass, move the hottest waiting task to the
/// CPU with the lowest runqueue power ratio. No hysteresis, no
/// thermal metric — pure greed.
fn greedy_pass(sys: &mut System, power: &PowerState) -> usize {
    let hottest_cpu = sys
        .topology()
        .cpu_ids()
        .max_by(|&a, &b| {
            runqueue_power_ratio(sys, a, power)
                .partial_cmp(&runqueue_power_ratio(sys, b, power))
                .unwrap()
        })
        .unwrap();
    let coolest_cpu = sys
        .topology()
        .cpu_ids()
        .min_by(|&a, &b| {
            runqueue_power_ratio(sys, a, power)
                .partial_cmp(&runqueue_power_ratio(sys, b, power))
                .unwrap()
        })
        .unwrap();
    let candidate = sys
        .rq(hottest_cpu)
        .iter_migration_candidates()
        .max_by(|&a, &b| {
            sys.task(a)
                .profile()
                .partial_cmp(&sys.task(b).profile())
                .unwrap()
        });
    if let Some(task) = candidate {
        if sys
            .migrate_queued(task, coolest_cpu, MigrationReason::EnergyBalance)
            .is_ok()
        {
            return 1;
        }
    }
    0
}

/// Spawns the same 16-task population (8 hot, 8 cool) on 8 CPUs, badly
/// placed: all the hot tasks pile onto the first four CPUs.
fn populate(sys: &mut System) {
    for c in 0..8 {
        for _ in 0..2 {
            sys.spawn(
                TaskConfig {
                    initial_profile: Watts(if c < 4 { 61.0 } else { 38.0 }),
                    ..TaskConfig::default()
                },
                CpuId(c),
            );
        }
    }
}

fn main() {
    let minutes = 5;
    let passes = minutes * 60 * 10; // One pass per 100 ms.

    // Greedy policy.
    let mut sys = System::new(Topology::xseries445(false));
    let power = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
    populate(&mut sys);
    for i in 0..passes {
        sys.set_now(SimTime::from_millis(i * 100));
        greedy_pass(&mut sys, &power);
    }
    let greedy_migrations = sys.stats().migrations();

    // The paper's balancer on the identical setup.
    let mut sys2 = System::new(Topology::xseries445(false));
    populate(&mut sys2);
    let mut balancer = EnergyAwareBalancer::new(&sys2, EnergyBalanceConfig::default());
    let mut power2 = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
    for i in 0..passes {
        sys2.set_now(SimTime::from_millis(i * 100));
        // Feed the thermal metric with each queue's current power, as
        // the estimator would.
        for c in 0..8 {
            let p = runqueue_power(&sys2, CpuId(c), Watts(13.6));
            power2.observe(CpuId(c), p, SimDuration::from_millis(100));
        }
        for c in 0..8 {
            balancer.run(CpuId(c), &mut sys2, &power2);
        }
    }
    let paper_migrations = sys2.stats().migrations();

    println!("simulated {minutes} minutes of balancing passes on identical loads:");
    println!("  greedy coolest-CPU policy: {greedy_migrations} migrations (ping-pong)");
    println!("  paper's guarded balancer:  {paper_migrations} migrations");
    println!(
        "\nratio: {:.0}x — the Section 4.3 hysteresis argument in one number",
        greedy_migrations as f64 / paper_migrations.max(1) as f64
    );
}
