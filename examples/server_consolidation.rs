//! A server-consolidation scenario: heterogeneous cooling, a hard
//! temperature limit, and a mixed tenant workload — does energy-aware
//! scheduling buy real throughput?
//!
//! This mirrors the paper's Section 6.2 experiment: some processors
//! sit near the air inlet (good cooling), others behind them run hot;
//! with a 38 degC limit the hot ones must throttle unless the
//! scheduler spreads the heat.
//!
//! ```sh
//! cargo run --release --example server_consolidation
//! ```

use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::units::{Celsius, SimDuration};
use ebs::workloads::section61_mix;

fn run(energy_aware: bool) -> ebs::sim::SimReport {
    let cfg = SimConfig::xseries445()
        .smt(true)
        .energy_aware(energy_aware)
        .throttling(true)
        // Per-package cooling quality: >1 = poorly cooled.
        .cooling_factors(vec![1.25, 0.62, 0.65, 1.28, 0.85, 0.60, 0.63, 0.66])
        .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)))
        .seed(11);
    let mut sim = Simulation::new(cfg);
    // Six tenants, six instances each: 36 tasks on 16 logical CPUs.
    sim.spawn_mix(&section61_mix(), 6);
    sim.run_for(SimDuration::from_secs(600));
    sim.report()
}

fn main() {
    println!("consolidated server, 36 tasks, 38 degC limit, 10 simulated minutes\n");
    let off = run(false);
    let on = run(true);

    println!(
        "{:>12} {:>14} {:>14}",
        "logical CPU", "throttled(off)", "throttled(on)"
    );
    for c in 0..16 {
        if off.throttled_fraction[c] > 0.005 || on.throttled_fraction[c] > 0.005 {
            println!(
                "{:>12} {:>13.1}% {:>13.1}%",
                format!("cpu{c}"),
                off.throttled_fraction[c] * 100.0,
                on.throttled_fraction[c] * 100.0
            );
        }
    }
    println!(
        "{:>12} {:>13.1}% {:>13.1}%",
        "average",
        off.avg_throttled_fraction * 100.0,
        on.avg_throttled_fraction * 100.0
    );
    println!(
        "\nthroughput: {:.3e} -> {:.3e} instructions/s ({:+.1}%)",
        off.throughput_ips,
        on.throughput_ips,
        (on.throughput_ips / off.throughput_ips - 1.0) * 100.0
    );
    println!(
        "migrations: {} -> {} (the price of the gain)",
        off.migrations, on.migrations
    );
}
