//! Swapping frequency governors on the same workload mix.
//!
//! Runs the paper's Section 6.1 mix under a tight 40 W package budget
//! four times — no DVFS, a pinned low clock, the utilization-driven
//! OnDemand governor, and the ThermalAware governor — and prints what
//! each policy traded: throughput, energy per instruction, time spent
//! below the nominal clock, and the mean effective clock.
//!
//! ```sh
//! cargo run --release --example dvfs_governors
//! ```

use ebs::dvfs::GovernorKind;
use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::units::{SimDuration, Watts};
use ebs::workloads::section61_mix;

fn main() {
    let base = || {
        SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
            .seed(42)
    };
    let variants: Vec<(&str, SimConfig)> = vec![
        ("pinned nominal (no dvfs)", base().throttling(true)),
        (
            "fixed slowest",
            base().dvfs_governor(GovernorKind::Fixed(5)),
        ),
        ("ondemand", base().dvfs_governor(GovernorKind::OnDemand)),
        (
            "thermal-aware",
            base().dvfs_governor(GovernorKind::ThermalAware),
        ),
    ];

    println!("18 tasks, 60 simulated seconds, 40 W package budget:\n");
    println!(
        "{:>26} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "governor", "Ginstr/s", "nJ/instr", "throttled", "scaled", "mean clock"
    );
    for (name, cfg) in variants {
        let mut sim = Simulation::new(cfg);
        sim.spawn_mix(&section61_mix(), 3);
        sim.run_for(SimDuration::from_secs(60));
        let report = sim.report();
        println!(
            "{:>26} {:>10.2} {:>10.2} {:>9.1}% {:>9.1}% {:>8.2}GHz",
            name,
            report.throughput_ips / 1e9,
            report.nj_per_instruction(),
            report.avg_throttled_fraction * 100.0,
            report.avg_scaled_fraction * 100.0,
            report.mean_frequency.as_ghz(),
        );
        // Per-P-state residency, the new SimReport signal.
        let residency: Vec<String> = report
            .pstate_residency
            .iter()
            .filter(|r| r.fraction > 0.001)
            .map(|r| format!("{} {:.0}%", r.frequency, r.fraction * 100.0))
            .collect();
        println!("{:>26}   residency: {}", "", residency.join(", "));
    }
}
